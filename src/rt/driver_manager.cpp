#include "src/rt/driver_manager.h"

#include <iterator>
#include <mutex>

namespace micropnp {

Result<std::shared_ptr<const DecodedImage>> SharedDecodeCache::GetOrDecode(
    const DriverImage& image, bool* hit) {
  const uint32_t crc = image.ImageCrc();
  {
    std::lock_guard lock(mutex_);
    auto it = by_crc_.find(crc);
    if (it != by_crc_.end() && it->second->image() == image) {
      ++hits_;
      if (hit != nullptr) {
        *hit = true;
      }
      return it->second;
    }
  }
  // Decode outside the lock: verification is the expensive part, and two
  // shards racing on the same new image just do the work twice, once ever.
  Result<std::shared_ptr<const DecodedImage>> result = DecodedImage::DecodeShared(image, crc);
  if (!result.ok()) {
    return result;
  }
  std::lock_guard lock(mutex_);
  ++misses_;
  if (hit != nullptr) {
    *hit = false;
  }
  by_crc_[crc] = *result;  // latest wins on CRC collision / decode race
  return result;
}

uint64_t SharedDecodeCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

uint64_t SharedDecodeCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

DriverManager::DriverManager(Scheduler& scheduler, EventRouter& router,
                             SharedDecodeCache* shared_cache)
    : scheduler_(scheduler), router_(router), shared_cache_(shared_cache) {
  router_.set_on_post([this] { SchedulePump(); });
}

Status DriverManager::InstallImage(const DriverImage& image) {
  if (image.device_id == kDeviceTypeAllPeripherals || image.device_id == kDeviceTypeAllClients) {
    return InvalidArgument("reserved device type id");
  }
  if (shared_cache_ != nullptr) {
    bool hit = false;
    Result<std::shared_ptr<const DecodedImage>> result = shared_cache_->GetOrDecode(image, &hit);
    if (!result.ok()) {
      return result.status();
    }
    if (hit) {
      ++decode_cache_hits_;
    }
    images_[image.device_id] = *result;
    ++installs_;
    return OkStatus();
  }
  const uint32_t crc = image.ImageCrc();
  std::shared_ptr<const DecodedImage> decoded;
  auto cached = decode_cache_.find(crc);
  if (cached != decode_cache_.end() && cached->second->image() == image) {
    // Byte-equality confirmed: a CRC collision must not let a different
    // image reuse (and thereby skip verification of) this entry.
    decoded = cached->second;
    ++decode_cache_hits_;
  } else {
    Result<std::shared_ptr<const DecodedImage>> result = DecodedImage::DecodeShared(image, crc);
    if (!result.ok()) {
      return result.status();
    }
    decoded = *result;
    if (cached != decode_cache_.end()) {
      // CRC collision with different bytes: the newer image takes the slot.
      cached->second = decoded;
    } else {
      if (decode_cache_.size() >= kDecodeCacheCapacity) {
        // Evict entries nothing references anymore (use_count 1 == only the
        // cache holds them) so repeated driver-version churn stays bounded.
        for (auto it = decode_cache_.begin(); it != decode_cache_.end();) {
          it = it->second.use_count() == 1 ? decode_cache_.erase(it) : std::next(it);
        }
      }
      if (decode_cache_.size() < kDecodeCacheCapacity) {
        decode_cache_[crc] = decoded;
      }
    }
  }
  images_[image.device_id] = std::move(decoded);
  ++installs_;
  return OkStatus();
}

Status DriverManager::RemoveImage(DeviceTypeId device_id) {
  auto it = images_.find(device_id);
  if (it == images_.end()) {
    return NotFound("no driver installed for " + FormatDeviceTypeId(device_id));
  }
  for (const auto& [channel, host] : hosts_) {
    if (host->device_id() == device_id) {
      return BusyError("driver in use on channel " + std::to_string(channel));
    }
  }
  // The decode cache intentionally keeps the entry: a re-deploy of the same
  // bytes after a remove skips verify+decode.
  images_.erase(it);
  return OkStatus();
}

bool DriverManager::HasDriverFor(DeviceTypeId device_id) const {
  return images_.count(device_id) != 0;
}

const DriverImage* DriverManager::ImageFor(DeviceTypeId device_id) const {
  auto it = images_.find(device_id);
  return it == images_.end() ? nullptr : &it->second->image();
}

std::shared_ptr<const DecodedImage> DriverManager::DecodedFor(DeviceTypeId device_id) const {
  auto it = images_.find(device_id);
  return it == images_.end() ? nullptr : it->second;
}

std::vector<DeviceTypeId> DriverManager::InstalledDrivers() const {
  std::vector<DeviceTypeId> ids;
  ids.reserve(images_.size());
  for (const auto& [id, decoded] : images_) {
    ids.push_back(id);
  }
  return ids;
}

Status DriverManager::Activate(ChannelId channel, DeviceTypeId device_id, ChannelBus& bus) {
  std::shared_ptr<const DecodedImage> decoded = DecodedFor(device_id);
  if (decoded == nullptr) {
    return NotFound("no driver for " + FormatDeviceTypeId(device_id));
  }
  if (hosts_.count(channel) != 0) {
    return AlreadyExists("channel already has an active driver");
  }
  auto host = std::make_unique<DriverHost>(std::move(decoded), channel, scheduler_, bus, router_);
  hosts_[channel] = std::move(host);
  router_.Post(channel, Event::Of(kEventInit));
  SchedulePump();
  return OkStatus();
}

Status DriverManager::Deactivate(ChannelId channel) {
  auto it = hosts_.find(channel);
  if (it == hosts_.end()) {
    return NotFound("no active driver on channel");
  }
  // Destroy runs synchronously so the driver can release hardware before the
  // host disappears (Section 4.1: destroy fires when the peripheral is
  // unplugged).
  it->second->HandleEvent(Event::Of(kEventDestroy));
  it->second->Teardown();
  hosts_.erase(it);
  return OkStatus();
}

DriverHost* DriverManager::HostForChannel(ChannelId channel) {
  auto it = hosts_.find(channel);
  return it == hosts_.end() ? nullptr : it->second.get();
}

DriverHost* DriverManager::HostForDevice(DeviceTypeId device_id) {
  for (auto& [channel, host] : hosts_) {
    if (host->device_id() == device_id) {
      return host.get();
    }
  }
  return nullptr;
}

size_t DriverManager::DispatchPending() {
  pump_scheduled_ = false;
  // Bound this pump to the work pending at entry: a driver whose handler
  // posts a new event on every dispatch gets its new events in the *next*
  // pump instead of livelocking this one.
  const size_t budget = router_.pending();
  size_t dispatched = 0;
  while (dispatched < budget) {
    const bool progressed = router_.DispatchOne([this](int slot, const Event& event) {
      DriverHost* host = HostForChannel(static_cast<ChannelId>(slot));
      if (host != nullptr) {
        host->HandleEvent(event);
      }
    });
    if (!progressed) {
      break;
    }
    ++dispatched;
  }
  if (!router_.idle()) {
    SchedulePump();
  }
  return dispatched;
}

void DriverManager::SchedulePump() {
  if (pump_scheduled_) {
    return;
  }
  pump_scheduled_ = true;
  scheduler_.ScheduleAfter(SimTime::FromNanos(0), [this] { DispatchPending(); });
}

}  // namespace micropnp
