#include "src/net/ip6.h"

#include <cstdio>
#include <vector>

namespace micropnp {

Ip6Address Ip6Address::FromGroups(const std::array<uint16_t, 8>& groups) {
  Ip6Address addr;
  for (int i = 0; i < 8; ++i) {
    addr.set_group(i, groups[i]);
  }
  return addr;
}

std::optional<Ip6Address> Ip6Address::Parse(const std::string& text) {
  // Split on "::" first (at most one occurrence).
  const size_t gap = text.find("::");
  if (gap != std::string::npos && text.find("::", gap + 1) != std::string::npos) {
    return std::nullopt;
  }

  auto parse_groups = [](const std::string& part, std::vector<uint16_t>& out) -> bool {
    if (part.empty()) {
      return true;
    }
    size_t pos = 0;
    while (pos <= part.size()) {
      size_t colon = part.find(':', pos);
      if (colon == std::string::npos) {
        colon = part.size();
      }
      const std::string group = part.substr(pos, colon - pos);
      if (group.empty() || group.size() > 4) {
        return false;
      }
      uint32_t value = 0;
      for (char c : group) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return false;
        }
        value = value * 16 + static_cast<uint32_t>(digit);
      }
      out.push_back(static_cast<uint16_t>(value));
      if (colon == part.size()) {
        break;
      }
      pos = colon + 1;
    }
    return true;
  };

  std::vector<uint16_t> head, tail;
  if (gap == std::string::npos) {
    if (!parse_groups(text, head) || head.size() != 8) {
      return std::nullopt;
    }
  } else {
    if (!parse_groups(text.substr(0, gap), head) || !parse_groups(text.substr(gap + 2), tail)) {
      return std::nullopt;
    }
    if (head.size() + tail.size() > 7) {
      return std::nullopt;  // "::" must cover at least one zero group
    }
  }

  std::array<uint16_t, 8> groups{};
  for (size_t i = 0; i < head.size(); ++i) {
    groups[i] = head[i];
  }
  for (size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  return FromGroups(groups);
}

std::string Ip6Address::ToString() const {
  // Find the longest run of zero groups (>= 2) for '::' compression.
  int best_start = -1, best_len = 0;
  int run_start = -1, run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (group(i) == 0) {
      if (run_start < 0) {
        run_start = i;
        run_len = 0;
      }
      ++run_len;
      if (run_len > best_len) {
        best_start = run_start;
        best_len = run_len;
      }
    } else {
      run_start = -1;
    }
  }
  if (best_len < 2) {
    best_start = -1;
  }

  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    if (best_start >= 0 && i == best_start) {
      out += "::";
      i += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') {
      out += ':';
    }
    std::snprintf(buf, sizeof(buf), "%x", group(i));
    out += buf;
  }
  if (out.empty()) {
    return "::";
  }
  return out;
}

bool Ip6Prefix::Contains(const Ip6Address& addr) const {
  int bits = length;
  for (int i = 0; i < 16 && bits > 0; ++i) {
    const int take = bits >= 8 ? 8 : bits;
    const uint8_t mask = static_cast<uint8_t>(0xff << (8 - take));
    if ((addr.bytes()[i] & mask) != (base.bytes()[i] & mask)) {
      return false;
    }
    bits -= take;
  }
  return true;
}

}  // namespace micropnp
