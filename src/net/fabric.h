// Simulated 6LoWPAN/RPL network fabric (Section 6 "Implementation").
//
// The paper's stack is IPv6 over 6LoWPAN on 802.15.4 radios, with RPL
// providing a DODAG (tree) for routing and SMRF forwarding multicast down
// that tree.  The fabric reproduces the pieces the μPnP protocol exercises:
//
//  * nodes arranged in a tree rooted at a border router (the RPL DODAG);
//  * UDP datagrams fragmented per 6LoWPAN and timed at 250 kbit/s per hop
//    with CSMA jitter and per-node stack-processing costs;
//  * unicast routed along the tree (RPL storing mode);
//  * multicast via SMRF: packets travel up to the root, then down only into
//    subtrees containing group members — plus a classic-flooding mode used
//    by the A2 ablation;
//  * anycast delivered to the nearest node bound to the anycast address;
//  * optional per-link loss for the unreliable-network experiments the
//    paper defers to future work (Section 9).
//
// Per-frame transmissions are counted globally and per delivery, which is
// what the SMRF-vs-flooding ablation measures.

#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/ip6.h"
#include "src/net/multicast_schema.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// 802.15.4 / 6LoWPAN link model.
struct LinkModel {
  double bitrate_bps = 250e3;           // 802.15.4 in the 2.4 GHz band
  size_t mac_overhead_bytes = 23;       // frame header + FCS + PHY preamble
  size_t compressed_header_bytes = 10;  // 6LoWPAN IPHC IPv6+UDP header
  size_t fragment_payload_bytes = 88;   // usable payload per fragment
  double csma_min_ms = 0.3;             // backoff jitter per frame
  double csma_max_ms = 1.7;
  double loss_rate = 0.0;               // per-frame loss probability

  // Number of 6LoWPAN fragments for a UDP payload.
  size_t FragmentsFor(size_t payload_bytes) const;
  // Airtime of all fragments of one datagram across one hop (no jitter).
  double AirtimeMs(size_t payload_bytes) const;
};

// Per-node stack costs.  The embedded profile models Contiki on an 8-bit
// ATMega128RFA1 (slow serialization + 6LoWPAN compression); the server
// profile models the μPnP Manager host.
struct NodeProfile {
  double tx_processing_ms = 21.0;   // build + compress + enqueue a datagram
  double rx_processing_ms = 13.5;   // reassemble + decompress + deliver
  double forward_processing_ms = 2.0;  // per intermediate hop
  double jitter_fraction = 0.04;    // +/- uniform on processing costs

  static NodeProfile Embedded() { return NodeProfile{}; }
  static NodeProfile Server() { return NodeProfile{0.4, 0.3, 0.2, 0.02}; }
};

enum class MulticastMode {
  kSmrf,      // up to the DODAG root, then down member subtrees only
  kFlooding,  // every node rebroadcasts once (classic flooding baseline)
};

class Fabric;

class NetNode {
 public:
  using UdpHandler =
      std::function<void(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                         const std::vector<uint8_t>& payload)>;

  const std::string& name() const { return name_; }
  const Ip6Address& address() const { return unicast_; }
  NetworkPrefix48 prefix() const { return PrefixOf(unicast_); }
  const NodeProfile& profile() const { return profile_; }

  // UDP port binding (one handler per port).
  void BindUdp(uint16_t port, UdpHandler handler) { handlers_[port] = std::move(handler); }

  // Sends a datagram into the fabric (unicast, multicast, or anycast).
  void SendUdp(const Ip6Address& dst, uint16_t port, const std::vector<uint8_t>& payload);

  // Multicast group membership (MLD-lite: membership propagates up the tree
  // so SMRF can prune).
  void JoinGroup(const Ip6Address& group);
  void LeaveGroup(const Ip6Address& group);
  bool InGroup(const Ip6Address& group) const { return groups_.count(group) != 0; }
  size_t group_count() const { return groups_.size(); }

  // Anycast service binding (the μPnP Manager address, Section 5).
  void BindAnycast(const Ip6Address& anycast);

  NetNode* parent() { return parent_; }
  const std::vector<NetNode*>& children() const { return children_; }
  int depth() const { return depth_; }

  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t datagrams_received() const { return datagrams_received_; }

 private:
  friend class Fabric;
  NetNode(Fabric& fabric, std::string name, Ip6Address unicast, NodeProfile profile,
          NetNode* parent);

  void Deliver(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
               const std::vector<uint8_t>& payload);

  Fabric& fabric_;
  std::string name_;
  Ip6Address unicast_;
  NodeProfile profile_;
  NetNode* parent_;
  std::vector<NetNode*> children_;
  int depth_ = 0;
  std::unordered_map<uint16_t, UdpHandler> handlers_;
  std::unordered_set<Ip6Address> groups_;
  // Groups joined by this node or any descendant (SMRF pruning state).
  std::unordered_map<Ip6Address, int> subtree_members_;
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_received_ = 0;
};

class Fabric {
 public:
  Fabric(Scheduler& scheduler, uint64_t seed, const LinkModel& link = LinkModel{});

  // Creates a node.  parent == nullptr makes a DODAG root (border router).
  NetNode* CreateNode(const std::string& name, const Ip6Address& unicast,
                      const NodeProfile& profile, NetNode* parent);

  Scheduler& scheduler() { return scheduler_; }
  const LinkModel& link() const { return link_; }
  void set_link(const LinkModel& link) { link_ = link; }

  MulticastMode multicast_mode() const { return multicast_mode_; }
  void set_multicast_mode(MulticastMode mode) { multicast_mode_ = mode; }

  // --- statistics -----------------------------------------------------------
  uint64_t frames_transmitted() const { return frames_transmitted_; }
  uint64_t frames_lost() const { return frames_lost_; }
  uint64_t multicast_frames() const { return multicast_frames_; }
  void ResetStats();

  // Hop distance along the tree between two nodes.
  int HopDistance(const NetNode& a, const NetNode& b) const;

  // One link-layer traversal (exposed for the path-building helper).
  struct Transfer {
    NetNode* from;
    NetNode* to;
  };

 private:
  friend class NetNode;

  void Route(NetNode& src, const Ip6Address& dst, uint16_t port,
             const std::vector<uint8_t>& payload);
  void RouteUnicast(NetNode& src, NetNode& dst, const Ip6Address& dst_addr, uint16_t port,
                    const std::vector<uint8_t>& payload);
  void RouteMulticast(NetNode& src, const Ip6Address& group, uint16_t port,
                      const std::vector<uint8_t>& payload);
  void UpdateSubtreeMembership(NetNode& node, const Ip6Address& group, int delta);

  // Path along the tree (exclusive of src, inclusive of dst), built by a
  // depth-lockstep walk to the lowest common ancestor.  The result lives in
  // a scratch buffer reused across calls: routing runs at gateway datagram
  // rates, and Route never re-enters (delivery happens later, from scheduler
  // callbacks), so per-datagram path vectors would be pure allocator churn.
  const std::vector<NetNode*>& TreePath(NetNode& src, NetNode& dst);
  // Per-link transfers along `path`, starting from `src` (scratch-backed).
  const std::vector<Transfer>& BuildTransfers(const std::vector<NetNode*>& path, NetNode* src);
  // Simulates the hop-by-hop delivery delay, counting frames; returns the
  // total latency or nullopt if a frame was lost.
  std::optional<double> SimulateHops(const std::vector<Transfer>& hops, size_t payload_bytes,
                                     bool multicast);

  Scheduler& scheduler_;
  Rng rng_;
  LinkModel link_;
  MulticastMode multicast_mode_ = MulticastMode::kSmrf;
  std::vector<std::unique_ptr<NetNode>> nodes_;
  // O(1) unicast destination lookup (the seed scanned nodes_ linearly, which
  // made every datagram O(N) at fleet scale).
  std::unordered_map<Ip6Address, NetNode*> nodes_by_address_;
  std::unordered_map<Ip6Address, std::vector<NetNode*>> anycast_bindings_;
  // Scratch buffers for the routing hot path (see TreePath).
  std::vector<NetNode*> path_scratch_;
  std::vector<NetNode*> down_scratch_;
  std::vector<Transfer> hops_scratch_;
  std::vector<Transfer> single_hop_;
  struct Descent {
    NetNode* node;
    double latency;
  };
  std::vector<Descent> mcast_queue_;
  uint64_t frames_transmitted_ = 0;
  uint64_t frames_lost_ = 0;
  uint64_t multicast_frames_ = 0;
};

}  // namespace micropnp

#endif  // SRC_NET_FABRIC_H_
