// Simulated 6LoWPAN/RPL network fabric (Section 6 "Implementation").
//
// The paper's stack is IPv6 over 6LoWPAN on 802.15.4 radios, with RPL
// providing a DODAG (tree) for routing and SMRF forwarding multicast down
// that tree.  The fabric reproduces the pieces the μPnP protocol exercises:
//
//  * nodes arranged in a tree rooted at a border router (the RPL DODAG);
//  * UDP datagrams fragmented per 6LoWPAN and timed at 250 kbit/s per hop
//    with CSMA jitter and per-node stack-processing costs;
//  * unicast routed along the tree (RPL storing mode);
//  * multicast via SMRF: packets travel up to the root, then down only into
//    subtrees containing group members — plus a classic-flooding mode used
//    by the A2 ablation;
//  * anycast delivered to the nearest node bound to the anycast address;
//  * optional per-link loss for the unreliable-network experiments the
//    paper defers to future work (Section 9).
//
// Per-frame transmissions are counted globally and per delivery, which is
// what the SMRF-vs-flooding ablation measures.
//
// Threading model.  The fabric is the one component the parallel runtime
// cannot shard outright: any node may send to any other node.  It is split
// into three classes of state:
//
//  * Immutable-after-setup: the node tree (parent/children/depth), the
//    address index, link model and profiles.  Built single-threaded before
//    workers start; read lock-free afterwards.
//  * Per-shard RouteContext: the RNG stream and the routing scratch buffers.
//    Routing always runs on the *sending* node's shard, using that shard's
//    context, so the hot path stays allocation- and lock-free.  In the
//    non-sharded (single-threaded) build there is exactly one context,
//    seeded as before, which preserves the historical RNG draw order bit
//    for bit.
//  * Shared mutable: multicast/anycast membership (guarded by a
//    shared_mutex; reads are the common case) and the global frame counters
//    (relaxed atomics).
//
// Delivery crossing shards is not a direct Scheduler call: the sender
// computes the absolute due time and hands the delivery closure to the
// destination shard's MPSC inbox (Shard::PostAt).  The link model gives
// every cross-node delivery a latency of at least tx processing + CSMA
// backoff + airtime + rx processing, which is the lookahead that makes the
// conservative quantum scheme in ShardedRuntime sound; see
// MinCrossShardLatencyMs().

#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/ip6.h"
#include "src/net/multicast_schema.h"
#include "src/sim/scheduler.h"

namespace micropnp {

class Shard;

// 802.15.4 / 6LoWPAN link model.
struct LinkModel {
  double bitrate_bps = 250e3;           // 802.15.4 in the 2.4 GHz band
  size_t mac_overhead_bytes = 23;       // frame header + FCS + PHY preamble
  size_t compressed_header_bytes = 10;  // 6LoWPAN IPHC IPv6+UDP header
  size_t fragment_payload_bytes = 88;   // usable payload per fragment
  double csma_min_ms = 0.3;             // backoff jitter per frame
  double csma_max_ms = 1.7;
  double loss_rate = 0.0;               // per-frame loss probability

  // Number of 6LoWPAN fragments for a UDP payload.
  size_t FragmentsFor(size_t payload_bytes) const;
  // Airtime of all fragments of one datagram across one hop (no jitter).
  double AirtimeMs(size_t payload_bytes) const;
};

// Per-node stack costs.  The embedded profile models Contiki on an 8-bit
// ATMega128RFA1 (slow serialization + 6LoWPAN compression); the server
// profile models the μPnP Manager host.
struct NodeProfile {
  double tx_processing_ms = 21.0;   // build + compress + enqueue a datagram
  double rx_processing_ms = 13.5;   // reassemble + decompress + deliver
  double forward_processing_ms = 2.0;  // per intermediate hop
  double jitter_fraction = 0.04;    // +/- uniform on processing costs

  static NodeProfile Embedded() { return NodeProfile{}; }
  static NodeProfile Server() { return NodeProfile{0.4, 0.3, 0.2, 0.02}; }
};

enum class MulticastMode {
  kSmrf,      // up to the DODAG root, then down member subtrees only
  kFlooding,  // every node rebroadcasts once (classic flooding baseline)
};

class Fabric;

class NetNode {
 public:
  using UdpHandler =
      std::function<void(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                         const std::vector<uint8_t>& payload)>;

  const std::string& name() const { return name_; }
  const Ip6Address& address() const { return unicast_; }
  NetworkPrefix48 prefix() const { return PrefixOf(unicast_); }
  const NodeProfile& profile() const { return profile_; }

  // UDP port binding (one handler per port).
  void BindUdp(uint16_t port, UdpHandler handler) { handlers_[port] = std::move(handler); }

  // Sends a datagram into the fabric (unicast, multicast, or anycast).
  void SendUdp(const Ip6Address& dst, uint16_t port, const std::vector<uint8_t>& payload);

  // Multicast group membership (MLD-lite: membership propagates up the tree
  // so SMRF can prune).
  void JoinGroup(const Ip6Address& group);
  void LeaveGroup(const Ip6Address& group);
  bool InGroup(const Ip6Address& group) const;
  size_t group_count() const;

  // Anycast service binding (the μPnP Manager address, Section 5).
  void BindAnycast(const Ip6Address& anycast);

  NetNode* parent() { return parent_; }
  const std::vector<NetNode*>& children() const { return children_; }
  int depth() const { return depth_; }

  // Shard owning this node in the parallel runtime (0 when not sharded).
  // All of the node's handlers and timers run on that shard's scheduler.
  uint32_t shard() const { return shard_; }

  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t datagrams_received() const { return datagrams_received_; }

 private:
  friend class Fabric;
  NetNode(Fabric& fabric, std::string name, Ip6Address unicast, NodeProfile profile,
          NetNode* parent, uint32_t shard);

  void Deliver(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
               const std::vector<uint8_t>& payload);

  Fabric& fabric_;
  std::string name_;
  Ip6Address unicast_;
  NodeProfile profile_;
  NetNode* parent_;
  std::vector<NetNode*> children_;
  int depth_ = 0;
  uint32_t shard_ = 0;
  std::unordered_map<uint16_t, UdpHandler> handlers_;
  // groups_ / subtree_members_ are guarded by Fabric::membership_mutex_
  // (written by the owner shard, read by any routing shard during SMRF
  // descent).
  std::unordered_set<Ip6Address> groups_;
  // Groups joined by this node or any descendant (SMRF pruning state).
  std::unordered_map<Ip6Address, int> subtree_members_;
  // Owner-shard-only counters: bumped on the node's own shard (send from the
  // owner, delivery closures run on the owner), so no atomics needed.
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_received_ = 0;
};

class Fabric {
 public:
  Fabric(Scheduler& scheduler, uint64_t seed, const LinkModel& link = LinkModel{});

  // Creates a node.  parent == nullptr makes a DODAG root (border router).
  // `shard` pins the node to a runtime shard (ignored until EnableSharding).
  NetNode* CreateNode(const std::string& name, const Ip6Address& unicast,
                      const NodeProfile& profile, NetNode* parent, uint32_t shard = 0);

  Scheduler& scheduler() { return scheduler_; }
  const LinkModel& link() const { return link_; }
  void set_link(const LinkModel& link) { link_ = link; }

  MulticastMode multicast_mode() const { return multicast_mode_; }
  void set_multicast_mode(MulticastMode mode) { multicast_mode_ = mode; }

  // Switches delivery to the sharded runtime: each node's delivery closures
  // are scheduled on (or posted to) its owning shard, and routing uses the
  // calling shard's RouteContext.  Must be called after the topology is
  // built and before workers start; shards[i] must be shard id i.
  void EnableSharding(const std::vector<Shard*>& shards);
  bool sharded() const { return !shards_.empty(); }

  // Lower bound on the simulated latency of any delivery between two
  // distinct nodes under the current link model: the conservative lookahead
  // for the parallel runtime's quantum.
  double MinCrossShardLatencyMs() const;

  // --- statistics -----------------------------------------------------------
  uint64_t frames_transmitted() const {
    return frames_transmitted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_lost() const { return frames_lost_.load(std::memory_order_relaxed); }
  uint64_t multicast_frames() const {
    return multicast_frames_.load(std::memory_order_relaxed);
  }
  void ResetStats();

  // Hop distance along the tree between two nodes.
  int HopDistance(const NetNode& a, const NetNode& b) const;

  // One link-layer traversal (exposed for the path-building helper).
  struct Transfer {
    NetNode* from;
    NetNode* to;
  };

 private:
  friend class NetNode;

  struct Descent {
    NetNode* node;
    double latency;
  };

  // Everything the routing hot path mutates, bundled per shard so routing
  // never takes a lock.  The scratch buffers are reused across calls:
  // routing runs at gateway datagram rates, and Route never re-enters
  // (delivery happens later, from scheduler callbacks), so per-datagram
  // path vectors would be pure allocator churn.  `in_route` backs a debug
  // assertion that the single-owner reuse contract actually holds.
  struct RouteContext {
    explicit RouteContext(uint64_t seed) : rng(seed) {}
    Rng rng;
    std::vector<NetNode*> path_scratch;
    std::vector<NetNode*> down_scratch;
    std::vector<Transfer> hops_scratch;
    std::vector<Transfer> single_hop;
    std::vector<Descent> mcast_queue;
    bool in_route = false;
  };

  // Debug-asserts that no other Route call is live on this context for the
  // duration of the guard (the scratch-buffer reentrancy contract).
  class ScratchGuard {
   public:
    explicit ScratchGuard(RouteContext& ctx);
    ~ScratchGuard();
    ScratchGuard(const ScratchGuard&) = delete;
    ScratchGuard& operator=(const ScratchGuard&) = delete;

   private:
    RouteContext& ctx_;
  };

  // The context for the calling thread: the base context when not sharded,
  // otherwise the current shard's context (falling back to the source
  // node's shard for main-thread sends before workers start).
  RouteContext& ContextFor(const NetNode& src);

  // Schedules `deliver` to run after `latency_ms` on dst's owning shard
  // (plain ScheduleAfter when not sharded; MPSC hand-off when the sender
  // runs on a different shard).
  void ScheduleDelivery(NetNode& dst, double latency_ms, std::function<void()> deliver);

  void Route(NetNode& src, const Ip6Address& dst, uint16_t port,
             const std::vector<uint8_t>& payload);
  void RouteUnicast(RouteContext& ctx, NetNode& src, NetNode& dst, const Ip6Address& dst_addr,
                    uint16_t port, const std::vector<uint8_t>& payload);
  void RouteMulticast(RouteContext& ctx, NetNode& src, const Ip6Address& group, uint16_t port,
                      const std::vector<uint8_t>& payload);
  // Caller must hold membership_mutex_ exclusively.
  void UpdateSubtreeMembershipLocked(NetNode& node, const Ip6Address& group, int delta);

  // Path along the tree (exclusive of src, inclusive of dst), built by a
  // depth-lockstep walk to the lowest common ancestor into ctx's scratch.
  const std::vector<NetNode*>& TreePath(RouteContext& ctx, NetNode& src, NetNode& dst);
  // Per-link transfers along `path`, starting from `src` (scratch-backed).
  const std::vector<Transfer>& BuildTransfers(RouteContext& ctx,
                                              const std::vector<NetNode*>& path, NetNode* src);
  // Simulates the hop-by-hop delivery delay, counting frames; returns the
  // total latency or nullopt if a frame was lost.
  std::optional<double> SimulateHops(RouteContext& ctx, const std::vector<Transfer>& hops,
                                     size_t payload_bytes, bool multicast);

  Scheduler& scheduler_;
  LinkModel link_;
  MulticastMode multicast_mode_ = MulticastMode::kSmrf;
  std::vector<std::unique_ptr<NetNode>> nodes_;
  // O(1) unicast destination lookup (the seed scanned nodes_ linearly, which
  // made every datagram O(N) at fleet scale).  Immutable once workers start.
  std::unordered_map<Ip6Address, NetNode*> nodes_by_address_;
  std::unordered_map<Ip6Address, std::vector<NetNode*>> anycast_bindings_;

  // Guards groups_/subtree_members_ on every node plus anycast_bindings_.
  mutable std::shared_mutex membership_mutex_;

  // Single-threaded routing context; carries the fabric's historical RNG
  // stream so non-sharded runs are bit-identical to the pre-sharding code.
  RouteContext base_context_;
  // One context per shard, created by EnableSharding.
  std::vector<Shard*> shards_;
  std::vector<std::unique_ptr<RouteContext>> shard_contexts_;

  std::atomic<uint64_t> frames_transmitted_{0};
  std::atomic<uint64_t> frames_lost_{0};
  std::atomic<uint64_t> multicast_frames_{0};
};

}  // namespace micropnp

#endif  // SRC_NET_FABRIC_H_
