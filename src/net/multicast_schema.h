// The μPnP multicast addressing schema (Section 5.1, Figure 9).
//
//   | 32 bits    | 48 bits          | 16 bits | 32 bits        |
//   | ff3e:0030  | network prefix   | 0       | peripheral id  |
//
// "µPnP then creates and maintains an IPv6 multicast group for each device
// type present in the network."  Reserved peripheral values: 0x00000000 =
// all peripherals, 0xffffffff = all μPnP clients.

#ifndef SRC_NET_MULTICAST_SCHEMA_H_
#define SRC_NET_MULTICAST_SCHEMA_H_

#include <cstdint>
#include <optional>

#include "src/common/types.h"
#include "src/net/ip6.h"

namespace micropnp {

// The fixed 32-bit prefix of all μPnP multicast addresses: ff3e:0030.
inline constexpr uint16_t kMulticastGroup0 = 0xff3e;
inline constexpr uint16_t kMulticastGroup1 = 0x0030;

// A 48-bit network prefix, e.g. 0x20010db80000 for 2001:db8::/48.
using NetworkPrefix48 = uint64_t;

// Extracts the top 48 bits of a unicast address as a NetworkPrefix48.
NetworkPrefix48 PrefixOf(const Ip6Address& unicast);

// Multicast group of all Things carrying peripheral type `id` inside the
// network prefix (Figure 9's worked example).
Ip6Address PeripheralGroup(NetworkPrefix48 prefix, DeviceTypeId id);

// Reserved groups (Section 5.1 a/b).
Ip6Address AllPeripheralsGroup(NetworkPrefix48 prefix);
Ip6Address AllClientsGroup(NetworkPrefix48 prefix);

// True iff `addr` matches the μPnP multicast schema.
bool IsMicroPnpGroup(const Ip6Address& addr);

// Recovers the peripheral type id from a schema address; nullopt when the
// address is not a μPnP group.
std::optional<DeviceTypeId> GroupPeripheral(const Ip6Address& addr);

// Recovers the embedded 48-bit network prefix from a schema address.
std::optional<NetworkPrefix48> GroupPrefix(const Ip6Address& addr);

}  // namespace micropnp

#endif  // SRC_NET_MULTICAST_SCHEMA_H_
