#include "src/net/fabric.h"

#include <algorithm>

#include "src/common/logging.h"

namespace micropnp {

// ------------------------------------------------------------- LinkModel ---

size_t LinkModel::FragmentsFor(size_t payload_bytes) const {
  const size_t total = payload_bytes + compressed_header_bytes;
  return (total + fragment_payload_bytes - 1) / fragment_payload_bytes;
}

double LinkModel::AirtimeMs(size_t payload_bytes) const {
  const size_t fragments = FragmentsFor(payload_bytes);
  const size_t total = payload_bytes + compressed_header_bytes;
  const size_t on_air_bytes = total + fragments * mac_overhead_bytes;
  return static_cast<double>(on_air_bytes) * 8.0 / bitrate_bps * 1e3;
}

// --------------------------------------------------------------- NetNode ---

NetNode::NetNode(Fabric& fabric, std::string name, Ip6Address unicast, NodeProfile profile,
                 NetNode* parent)
    : fabric_(fabric),
      name_(std::move(name)),
      unicast_(unicast),
      profile_(profile),
      parent_(parent) {
  if (parent != nullptr) {
    parent->children_.push_back(this);
    depth_ = parent->depth_ + 1;
  }
}

void NetNode::SendUdp(const Ip6Address& dst, uint16_t port, const std::vector<uint8_t>& payload) {
  ++datagrams_sent_;
  fabric_.Route(*this, dst, port, payload);
}

void NetNode::JoinGroup(const Ip6Address& group) {
  if (groups_.insert(group).second) {
    fabric_.UpdateSubtreeMembership(*this, group, +1);
  }
}

void NetNode::LeaveGroup(const Ip6Address& group) {
  if (groups_.erase(group) != 0) {
    fabric_.UpdateSubtreeMembership(*this, group, -1);
  }
}

void NetNode::BindAnycast(const Ip6Address& anycast) {
  fabric_.anycast_bindings_[anycast].push_back(this);
}

void NetNode::Deliver(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                      const std::vector<uint8_t>& payload) {
  ++datagrams_received_;
  auto it = handlers_.find(port);
  if (it != handlers_.end() && it->second) {
    it->second(src, dst, port, payload);
  }
}

// ---------------------------------------------------------------- Fabric ---

Fabric::Fabric(Scheduler& scheduler, uint64_t seed, const LinkModel& link)
    : scheduler_(scheduler), rng_(seed), link_(link) {}

NetNode* Fabric::CreateNode(const std::string& name, const Ip6Address& unicast,
                            const NodeProfile& profile, NetNode* parent) {
  nodes_.push_back(std::unique_ptr<NetNode>(new NetNode(*this, name, unicast, profile, parent)));
  nodes_by_address_[unicast] = nodes_.back().get();
  return nodes_.back().get();
}

void Fabric::ResetStats() {
  frames_transmitted_ = 0;
  frames_lost_ = 0;
  multicast_frames_ = 0;
}

int Fabric::HopDistance(const NetNode& a, const NetNode& b) const {
  // Walk both up to equal depth, then in lockstep to the common ancestor.
  const NetNode* pa = &a;
  const NetNode* pb = &b;
  int hops = 0;
  while (pa->depth() > pb->depth()) {
    pa = pa->parent_;
    ++hops;
  }
  while (pb->depth() > pa->depth()) {
    pb = pb->parent_;
    ++hops;
  }
  while (pa != pb) {
    pa = pa->parent_;
    pb = pb->parent_;
    hops += 2;
  }
  return hops;
}

const std::vector<Fabric::Transfer>& Fabric::BuildTransfers(const std::vector<NetNode*>& path,
                                                            NetNode* src) {
  hops_scratch_.clear();
  NetNode* prev = src;
  for (NetNode* next : path) {
    hops_scratch_.push_back({prev, next});
    prev = next;
  }
  return hops_scratch_;
}

const std::vector<NetNode*>& Fabric::TreePath(NetNode& src, NetNode& dst) {
  // Depth-lockstep walk to the lowest common ancestor: O(depth) with no
  // chain materialization or membership scans.  path_scratch_ accumulates
  // the up segment (src's ancestors through the common node, exclusive of
  // src); down_scratch_ accumulates the down segment (dst up to, exclusive
  // of, the common node) which is appended in reverse.
  path_scratch_.clear();
  down_scratch_.clear();
  NetNode* a = &src;
  NetNode* b = &dst;
  while (a->depth() > b->depth()) {
    a = a->parent();
    path_scratch_.push_back(a);
  }
  while (b->depth() > a->depth()) {
    down_scratch_.push_back(b);
    b = b->parent();
  }
  while (a != b) {
    if (a->parent() == nullptr || b->parent() == nullptr) {
      path_scratch_.clear();  // disjoint trees: unroutable
      return path_scratch_;
    }
    a = a->parent();
    path_scratch_.push_back(a);
    down_scratch_.push_back(b);
    b = b->parent();
  }
  path_scratch_.insert(path_scratch_.end(), down_scratch_.rbegin(), down_scratch_.rend());
  return path_scratch_;
}

std::optional<double> Fabric::SimulateHops(const std::vector<Transfer>& hops,
                                           size_t payload_bytes, bool multicast) {
  double total_ms = 0.0;
  const size_t fragments = link_.FragmentsFor(payload_bytes);
  for (size_t h = 0; h < hops.size(); ++h) {
    // CSMA backoff + airtime per fragment.
    for (size_t f = 0; f < fragments; ++f) {
      ++frames_transmitted_;
      if (multicast) {
        ++multicast_frames_;
      }
      total_ms += rng_.Uniform(link_.csma_min_ms, link_.csma_max_ms);
      if (link_.loss_rate > 0.0 && rng_.Bernoulli(link_.loss_rate)) {
        ++frames_lost_;
        return std::nullopt;  // datagram lost (no link-layer retransmission)
      }
    }
    total_ms += link_.AirtimeMs(payload_bytes);
    // Intermediate nodes forward without full stack traversal.
    if (h + 1 < hops.size()) {
      const NodeProfile& p = hops[h].to->profile();
      total_ms += p.forward_processing_ms *
                  (1.0 + p.jitter_fraction * rng_.Uniform(-1.0, 1.0));
    }
  }
  return total_ms;
}

void Fabric::Route(NetNode& src, const Ip6Address& dst, uint16_t port,
                   const std::vector<uint8_t>& payload) {
  if (dst.IsMulticast()) {
    RouteMulticast(src, dst, port, payload);
    return;
  }
  // Anycast: deliver to the nearest bound node (Section 5: "the µPnP manager
  // is assigned an anycast IPv6 address to allow for network-level
  // redundancy and scalability").
  auto anycast = anycast_bindings_.find(dst);
  if (anycast != anycast_bindings_.end() && !anycast->second.empty()) {
    NetNode* nearest = anycast->second.front();
    int best = HopDistance(src, *nearest);
    for (NetNode* candidate : anycast->second) {
      const int d = HopDistance(src, *candidate);
      if (d < best) {
        best = d;
        nearest = candidate;
      }
    }
    RouteUnicast(src, *nearest, dst, port, payload);
    return;
  }
  // Plain unicast.
  auto node = nodes_by_address_.find(dst);
  if (node != nodes_by_address_.end()) {
    RouteUnicast(src, *node->second, dst, port, payload);
    return;
  }
  MLOG(kDebug, "net") << "no route to " << dst.ToString();
}

void Fabric::RouteUnicast(NetNode& src, NetNode& dst, const Ip6Address& dst_addr, uint16_t port,
                          const std::vector<uint8_t>& payload) {
  if (&src == &dst) {
    scheduler_.ScheduleAfter(SimTime::FromMillis(0.05),
                             [&dst, src_addr = src.address(), dst_addr, port, payload] {
                               dst.Deliver(src_addr, dst_addr, port, payload);
                             });
    return;
  }
  const std::vector<NetNode*>& path = TreePath(src, dst);
  if (path.empty()) {
    return;
  }
  const std::vector<Transfer>& hops = BuildTransfers(path, &src);
  // Sender-side stack processing.
  double latency = src.profile().tx_processing_ms *
                   (1.0 + src.profile().jitter_fraction * rng_.Uniform(-1.0, 1.0));
  std::optional<double> wire = SimulateHops(hops, payload.size(), /*multicast=*/false);
  if (!wire.has_value()) {
    return;  // lost
  }
  latency += *wire;
  latency += dst.profile().rx_processing_ms *
             (1.0 + dst.profile().jitter_fraction * rng_.Uniform(-1.0, 1.0));
  scheduler_.ScheduleAfter(SimTime::FromMillis(latency),
                           [&dst, src_addr = src.address(), dst_addr, port, payload] {
                             dst.Deliver(src_addr, dst_addr, port, payload);
                           });
}

void Fabric::UpdateSubtreeMembership(NetNode& node, const Ip6Address& group, int delta) {
  // Propagate membership up the tree (the DAO-style state SMRF piggybacks
  // on RPL for).
  NetNode* current = &node;
  while (current != nullptr) {
    current->subtree_members_[group] += delta;
    if (current->subtree_members_[group] <= 0) {
      current->subtree_members_.erase(group);
    }
    current = current->parent();
  }
}

void Fabric::RouteMulticast(NetNode& src, const Ip6Address& group, uint16_t port,
                            const std::vector<uint8_t>& payload) {
  // Phase 1: the datagram climbs to the DODAG root.
  NetNode* root = &src;
  hops_scratch_.clear();
  while (root->parent() != nullptr) {
    hops_scratch_.push_back({root, root->parent()});
    root = root->parent();
  }

  const double tx = src.profile().tx_processing_ms *
                    (1.0 + src.profile().jitter_fraction * rng_.Uniform(-1.0, 1.0));
  std::optional<double> climb = SimulateHops(hops_scratch_, payload.size(), /*multicast=*/true);
  if (!climb.has_value()) {
    return;
  }
  double base_latency = tx + *climb;

  // Phase 2: distribute down the tree.
  mcast_queue_.clear();
  mcast_queue_.push_back({root, base_latency});
  while (!mcast_queue_.empty()) {
    Descent current = mcast_queue_.back();
    mcast_queue_.pop_back();

    // Deliver locally if this node is a member (the source also receives its
    // own group traffic if subscribed, except we suppress the loopback).
    if (current.node != &src && current.node->InGroup(group)) {
      NetNode* dst = current.node;
      const double rx = dst->profile().rx_processing_ms *
                        (1.0 + dst->profile().jitter_fraction * rng_.Uniform(-1.0, 1.0));
      scheduler_.ScheduleAfter(SimTime::FromMillis(current.latency + rx),
                               [dst, src_addr = src.address(), group, port, payload] {
                                 dst->Deliver(src_addr, group, port, payload);
                               });
    }

    // Forward into child subtrees.
    for (NetNode* child : current.node->children()) {
      const bool has_members = child->subtree_members_.count(group) != 0;
      const bool forward = (multicast_mode_ == MulticastMode::kFlooding) || has_members;
      if (!forward) {
        continue;
      }
      single_hop_.assign(1, Transfer{current.node, child});
      std::optional<double> wire = SimulateHops(single_hop_, payload.size(), /*multicast=*/true);
      if (!wire.has_value()) {
        continue;  // lost on this branch only
      }
      double forward_cost = current.node->profile().forward_processing_ms *
                            (1.0 + current.node->profile().jitter_fraction *
                                       rng_.Uniform(-1.0, 1.0));
      if (current.node == &src) {
        forward_cost = 0.0;
      }
      mcast_queue_.push_back({child, current.latency + *wire + forward_cost});
    }
  }
}

}  // namespace micropnp
