#include "src/net/fabric.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "src/common/logging.h"
#include "src/rt/shard.h"

namespace micropnp {

// ------------------------------------------------------------- LinkModel ---

size_t LinkModel::FragmentsFor(size_t payload_bytes) const {
  const size_t total = payload_bytes + compressed_header_bytes;
  return (total + fragment_payload_bytes - 1) / fragment_payload_bytes;
}

double LinkModel::AirtimeMs(size_t payload_bytes) const {
  const size_t fragments = FragmentsFor(payload_bytes);
  const size_t total = payload_bytes + compressed_header_bytes;
  const size_t on_air_bytes = total + fragments * mac_overhead_bytes;
  return static_cast<double>(on_air_bytes) * 8.0 / bitrate_bps * 1e3;
}

// --------------------------------------------------------------- NetNode ---

NetNode::NetNode(Fabric& fabric, std::string name, Ip6Address unicast, NodeProfile profile,
                 NetNode* parent, uint32_t shard)
    : fabric_(fabric),
      name_(std::move(name)),
      unicast_(unicast),
      profile_(profile),
      parent_(parent),
      shard_(shard) {
  if (parent != nullptr) {
    parent->children_.push_back(this);
    depth_ = parent->depth_ + 1;
  }
}

void NetNode::SendUdp(const Ip6Address& dst, uint16_t port, const std::vector<uint8_t>& payload) {
  ++datagrams_sent_;
  fabric_.Route(*this, dst, port, payload);
}

void NetNode::JoinGroup(const Ip6Address& group) {
  std::unique_lock lock(fabric_.membership_mutex_);
  if (groups_.insert(group).second) {
    fabric_.UpdateSubtreeMembershipLocked(*this, group, +1);
  }
}

void NetNode::LeaveGroup(const Ip6Address& group) {
  std::unique_lock lock(fabric_.membership_mutex_);
  if (groups_.erase(group) != 0) {
    fabric_.UpdateSubtreeMembershipLocked(*this, group, -1);
  }
}

bool NetNode::InGroup(const Ip6Address& group) const {
  std::shared_lock lock(fabric_.membership_mutex_);
  return groups_.count(group) != 0;
}

size_t NetNode::group_count() const {
  std::shared_lock lock(fabric_.membership_mutex_);
  return groups_.size();
}

void NetNode::BindAnycast(const Ip6Address& anycast) {
  std::unique_lock lock(fabric_.membership_mutex_);
  fabric_.anycast_bindings_[anycast].push_back(this);
}

void NetNode::Deliver(const Ip6Address& src, const Ip6Address& dst, uint16_t port,
                      const std::vector<uint8_t>& payload) {
  ++datagrams_received_;
  auto it = handlers_.find(port);
  if (it != handlers_.end() && it->second) {
    it->second(src, dst, port, payload);
  }
}

// ---------------------------------------------------------------- Fabric ---

Fabric::Fabric(Scheduler& scheduler, uint64_t seed, const LinkModel& link)
    : scheduler_(scheduler), link_(link), base_context_(seed) {}

NetNode* Fabric::CreateNode(const std::string& name, const Ip6Address& unicast,
                            const NodeProfile& profile, NetNode* parent, uint32_t shard) {
  nodes_.push_back(
      std::unique_ptr<NetNode>(new NetNode(*this, name, unicast, profile, parent, shard)));
  nodes_by_address_[unicast] = nodes_.back().get();
  return nodes_.back().get();
}

void Fabric::EnableSharding(const std::vector<Shard*>& shards) {
  shards_ = shards;
  shard_contexts_.clear();
  shard_contexts_.reserve(shards.size());
  for (Shard* shard : shards) {
    // Seed each shard's routing stream from the shard's own stream, keeping
    // the scenario seed the single source of randomness.
    shard_contexts_.push_back(std::make_unique<RouteContext>(shard->rng().NextU64()));
  }
}

double Fabric::MinCrossShardLatencyMs() const {
  // Every delivery between distinct nodes pays at least: sender stack
  // processing + one CSMA backoff + one-hop airtime of the smallest
  // datagram + receiver stack processing, each at the lower end of its
  // jitter band.  (The src == dst fast path is same-node, hence same-shard,
  // so it does not bound the lookahead.)
  double min_tx = NodeProfile::Embedded().tx_processing_ms;
  double min_rx = NodeProfile::Embedded().rx_processing_ms;
  bool any = false;
  for (const auto& node : nodes_) {
    const NodeProfile& p = node->profile();
    const double tx = p.tx_processing_ms * (1.0 - p.jitter_fraction);
    const double rx = p.rx_processing_ms * (1.0 - p.jitter_fraction);
    if (!any || tx < min_tx) {
      min_tx = tx;
    }
    if (!any || rx < min_rx) {
      min_rx = rx;
    }
    any = true;
  }
  if (!any) {
    const NodeProfile server = NodeProfile::Server();
    min_tx = server.tx_processing_ms * (1.0 - server.jitter_fraction);
    min_rx = server.rx_processing_ms * (1.0 - server.jitter_fraction);
  }
  return min_tx + link_.csma_min_ms + link_.AirtimeMs(0) + min_rx;
}

void Fabric::ResetStats() {
  frames_transmitted_.store(0, std::memory_order_relaxed);
  frames_lost_.store(0, std::memory_order_relaxed);
  multicast_frames_.store(0, std::memory_order_relaxed);
}

int Fabric::HopDistance(const NetNode& a, const NetNode& b) const {
  // Walk both up to equal depth, then in lockstep to the common ancestor.
  const NetNode* pa = &a;
  const NetNode* pb = &b;
  int hops = 0;
  while (pa->depth() > pb->depth()) {
    pa = pa->parent_;
    ++hops;
  }
  while (pb->depth() > pa->depth()) {
    pb = pb->parent_;
    ++hops;
  }
  while (pa != pb) {
    pa = pa->parent_;
    pb = pb->parent_;
    hops += 2;
  }
  return hops;
}

Fabric::ScratchGuard::ScratchGuard(RouteContext& ctx) : ctx_(ctx) {
  assert(!ctx_.in_route && "Fabric routing re-entered on the same context: "
                           "the scratch buffers are single-owner");
  ctx_.in_route = true;
}

Fabric::ScratchGuard::~ScratchGuard() { ctx_.in_route = false; }

Fabric::RouteContext& Fabric::ContextFor(const NetNode& src) {
  if (shards_.empty()) {
    return base_context_;
  }
  if (Shard* current = Shard::Current()) {
    return *shard_contexts_[current->id()];
  }
  // Main-thread send before workers start (bring-up): use the source node's
  // shard context — no worker is running, so it is free.
  return *shard_contexts_[src.shard()];
}

void Fabric::ScheduleDelivery(NetNode& dst, double latency_ms, std::function<void()> deliver) {
  if (shards_.empty()) {
    scheduler_.ScheduleAfter(SimTime::FromMillis(latency_ms), std::move(deliver));
    return;
  }
  Shard* current = Shard::Current();
  Shard* owner = shards_[dst.shard()];
  const SimTime now =
      current != nullptr ? current->scheduler().now() : owner->scheduler().now();
  const uint64_t due_ns = now.nanos() + SimTime::FromMillis(latency_ms).nanos();
  if (current != nullptr && current != owner) {
    // Cross-shard: hand off through the owner's inbox.  A full inbox drops
    // the datagram, which the protocol treats like any lost frame.
    owner->PostAt(due_ns, std::move(deliver));
    return;
  }
  owner->scheduler().ScheduleAt(SimTime::FromNanos(due_ns), std::move(deliver));
}

const std::vector<Fabric::Transfer>& Fabric::BuildTransfers(RouteContext& ctx,
                                                            const std::vector<NetNode*>& path,
                                                            NetNode* src) {
  ctx.hops_scratch.clear();
  NetNode* prev = src;
  for (NetNode* next : path) {
    ctx.hops_scratch.push_back({prev, next});
    prev = next;
  }
  return ctx.hops_scratch;
}

const std::vector<NetNode*>& Fabric::TreePath(RouteContext& ctx, NetNode& src, NetNode& dst) {
  // Depth-lockstep walk to the lowest common ancestor: O(depth) with no
  // chain materialization or membership scans.  path_scratch accumulates
  // the up segment (src's ancestors through the common node, exclusive of
  // src); down_scratch accumulates the down segment (dst up to, exclusive
  // of, the common node) which is appended in reverse.
  ctx.path_scratch.clear();
  ctx.down_scratch.clear();
  NetNode* a = &src;
  NetNode* b = &dst;
  while (a->depth() > b->depth()) {
    a = a->parent();
    ctx.path_scratch.push_back(a);
  }
  while (b->depth() > a->depth()) {
    ctx.down_scratch.push_back(b);
    b = b->parent();
  }
  while (a != b) {
    if (a->parent() == nullptr || b->parent() == nullptr) {
      ctx.path_scratch.clear();  // disjoint trees: unroutable
      return ctx.path_scratch;
    }
    a = a->parent();
    ctx.path_scratch.push_back(a);
    ctx.down_scratch.push_back(b);
    b = b->parent();
  }
  ctx.path_scratch.insert(ctx.path_scratch.end(), ctx.down_scratch.rbegin(),
                          ctx.down_scratch.rend());
  return ctx.path_scratch;
}

std::optional<double> Fabric::SimulateHops(RouteContext& ctx, const std::vector<Transfer>& hops,
                                           size_t payload_bytes, bool multicast) {
  double total_ms = 0.0;
  const size_t fragments = link_.FragmentsFor(payload_bytes);
  for (size_t h = 0; h < hops.size(); ++h) {
    // CSMA backoff + airtime per fragment.
    for (size_t f = 0; f < fragments; ++f) {
      frames_transmitted_.fetch_add(1, std::memory_order_relaxed);
      if (multicast) {
        multicast_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      total_ms += ctx.rng.Uniform(link_.csma_min_ms, link_.csma_max_ms);
      if (link_.loss_rate > 0.0 && ctx.rng.Bernoulli(link_.loss_rate)) {
        frames_lost_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;  // datagram lost (no link-layer retransmission)
      }
    }
    total_ms += link_.AirtimeMs(payload_bytes);
    // Intermediate nodes forward without full stack traversal.
    if (h + 1 < hops.size()) {
      const NodeProfile& p = hops[h].to->profile();
      total_ms += p.forward_processing_ms *
                  (1.0 + p.jitter_fraction * ctx.rng.Uniform(-1.0, 1.0));
    }
  }
  return total_ms;
}

void Fabric::Route(NetNode& src, const Ip6Address& dst, uint16_t port,
                   const std::vector<uint8_t>& payload) {
  RouteContext& ctx = ContextFor(src);
  ScratchGuard guard(ctx);
  if (dst.IsMulticast()) {
    RouteMulticast(ctx, src, dst, port, payload);
    return;
  }
  // Anycast: deliver to the nearest bound node (Section 5: "the µPnP manager
  // is assigned an anycast IPv6 address to allow for network-level
  // redundancy and scalability").
  NetNode* anycast_nearest = nullptr;
  {
    std::shared_lock lock(membership_mutex_);
    auto anycast = anycast_bindings_.find(dst);
    if (anycast != anycast_bindings_.end() && !anycast->second.empty()) {
      anycast_nearest = anycast->second.front();
      int best = HopDistance(src, *anycast_nearest);
      for (NetNode* candidate : anycast->second) {
        const int d = HopDistance(src, *candidate);
        if (d < best) {
          best = d;
          anycast_nearest = candidate;
        }
      }
    }
  }
  if (anycast_nearest != nullptr) {
    RouteUnicast(ctx, src, *anycast_nearest, dst, port, payload);
    return;
  }
  // Plain unicast.
  auto node = nodes_by_address_.find(dst);
  if (node != nodes_by_address_.end()) {
    RouteUnicast(ctx, src, *node->second, dst, port, payload);
    return;
  }
  MLOG(kDebug, "net") << "no route to " << dst.ToString();
}

void Fabric::RouteUnicast(RouteContext& ctx, NetNode& src, NetNode& dst,
                          const Ip6Address& dst_addr, uint16_t port,
                          const std::vector<uint8_t>& payload) {
  if (&src == &dst) {
    ScheduleDelivery(dst, 0.05, [&dst, src_addr = src.address(), dst_addr, port, payload] {
      dst.Deliver(src_addr, dst_addr, port, payload);
    });
    return;
  }
  const std::vector<NetNode*>& path = TreePath(ctx, src, dst);
  if (path.empty()) {
    return;
  }
  const std::vector<Transfer>& hops = BuildTransfers(ctx, path, &src);
  // Sender-side stack processing.
  double latency = src.profile().tx_processing_ms *
                   (1.0 + src.profile().jitter_fraction * ctx.rng.Uniform(-1.0, 1.0));
  std::optional<double> wire = SimulateHops(ctx, hops, payload.size(), /*multicast=*/false);
  if (!wire.has_value()) {
    return;  // lost
  }
  latency += *wire;
  latency += dst.profile().rx_processing_ms *
             (1.0 + dst.profile().jitter_fraction * ctx.rng.Uniform(-1.0, 1.0));
  ScheduleDelivery(dst, latency, [&dst, src_addr = src.address(), dst_addr, port, payload] {
    dst.Deliver(src_addr, dst_addr, port, payload);
  });
}

void Fabric::UpdateSubtreeMembershipLocked(NetNode& node, const Ip6Address& group, int delta) {
  // Propagate membership up the tree (the DAO-style state SMRF piggybacks
  // on RPL for).
  NetNode* current = &node;
  while (current != nullptr) {
    current->subtree_members_[group] += delta;
    if (current->subtree_members_[group] <= 0) {
      current->subtree_members_.erase(group);
    }
    current = current->parent();
  }
}

void Fabric::RouteMulticast(RouteContext& ctx, NetNode& src, const Ip6Address& group,
                            uint16_t port, const std::vector<uint8_t>& payload) {
  // Phase 1: the datagram climbs to the DODAG root.
  NetNode* root = &src;
  ctx.hops_scratch.clear();
  while (root->parent() != nullptr) {
    ctx.hops_scratch.push_back({root, root->parent()});
    root = root->parent();
  }

  const double tx = src.profile().tx_processing_ms *
                    (1.0 + src.profile().jitter_fraction * ctx.rng.Uniform(-1.0, 1.0));
  std::optional<double> climb =
      SimulateHops(ctx, ctx.hops_scratch, payload.size(), /*multicast=*/true);
  if (!climb.has_value()) {
    return;
  }
  double base_latency = tx + *climb;

  // Phase 2: distribute down the tree.  Membership is read under the shared
  // lock for the whole descent; delivery closures are scheduled after it is
  // released so owner-shard handlers never run under the lock.
  struct PendingDelivery {
    NetNode* dst;
    double latency;
  };
  std::vector<PendingDelivery> deliveries;
  {
    std::shared_lock lock(membership_mutex_);
    ctx.mcast_queue.clear();
    ctx.mcast_queue.push_back({root, base_latency});
    while (!ctx.mcast_queue.empty()) {
      Descent current = ctx.mcast_queue.back();
      ctx.mcast_queue.pop_back();

      // Deliver locally if this node is a member (the source also receives
      // its own group traffic if subscribed, except we suppress the
      // loopback).
      if (current.node != &src && current.node->groups_.count(group) != 0) {
        NetNode* dst = current.node;
        const double rx = dst->profile().rx_processing_ms *
                          (1.0 + dst->profile().jitter_fraction * ctx.rng.Uniform(-1.0, 1.0));
        deliveries.push_back({dst, current.latency + rx});
      }

      // Forward into child subtrees.
      for (NetNode* child : current.node->children()) {
        const bool has_members = child->subtree_members_.count(group) != 0;
        const bool forward = (multicast_mode_ == MulticastMode::kFlooding) || has_members;
        if (!forward) {
          continue;
        }
        ctx.single_hop.assign(1, Transfer{current.node, child});
        std::optional<double> wire =
            SimulateHops(ctx, ctx.single_hop, payload.size(), /*multicast=*/true);
        if (!wire.has_value()) {
          continue;  // lost on this branch only
        }
        double forward_cost = current.node->profile().forward_processing_ms *
                              (1.0 + current.node->profile().jitter_fraction *
                                         ctx.rng.Uniform(-1.0, 1.0));
        if (current.node == &src) {
          forward_cost = 0.0;
        }
        ctx.mcast_queue.push_back({child, current.latency + *wire + forward_cost});
      }
    }
  }
  for (PendingDelivery& pending : deliveries) {
    NetNode* dst = pending.dst;
    ScheduleDelivery(*dst, pending.latency,
                     [dst, src_addr = src.address(), group, port, payload] {
                       dst->Deliver(src_addr, group, port, payload);
                     });
  }
}

}  // namespace micropnp
