// IPv6 addresses for the μPnP network architecture (Section 5).
//
// Minimal but real: 128-bit addresses, textual parsing/formatting with '::'
// compression (RFC 5952 style, as the paper's footnote 1 references),
// multicast classification, and prefix arithmetic used by the
// unicast-prefix-based multicast schema (RFC 3306, Figure 9).

#ifndef SRC_NET_IP6_H_
#define SRC_NET_IP6_H_

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace micropnp {

class Ip6Address {
 public:
  constexpr Ip6Address() : bytes_{} {}
  explicit constexpr Ip6Address(const std::array<uint8_t, 16>& bytes) : bytes_(bytes) {}

  // Builds from eight 16-bit groups, e.g. {0x2001, 0xdb8, 0, 0, 0, 0, 0, 1}.
  static Ip6Address FromGroups(const std::array<uint16_t, 8>& groups);

  // Parses textual form ("2001:db8::1", "ff3e:30:2001:db8::ed3f:ac1").
  // Returns nullopt on malformed input.
  static std::optional<Ip6Address> Parse(const std::string& text);

  const std::array<uint8_t, 16>& bytes() const { return bytes_; }
  uint16_t group(int i) const {
    return static_cast<uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  }
  void set_group(int i, uint16_t v) {
    bytes_[2 * i] = static_cast<uint8_t>(v >> 8);
    bytes_[2 * i + 1] = static_cast<uint8_t>(v & 0xff);
  }

  bool IsUnspecified() const { return *this == Ip6Address(); }
  bool IsMulticast() const { return bytes_[0] == 0xff; }

  // RFC 5952 canonical text: lowercase hex, longest zero run compressed.
  std::string ToString() const;

  auto operator<=>(const Ip6Address&) const = default;

 private:
  std::array<uint8_t, 16> bytes_;
};

// A routing prefix (address + length in bits).
struct Ip6Prefix {
  Ip6Address base;
  int length = 64;

  bool Contains(const Ip6Address& addr) const;
};

// Mixes the 128 address bits down to a well-distributed 64-bit hash
// (SplitMix64 finalizer over the two halves).  The hot-path routing and
// pending tables key unordered containers on addresses with this.
inline uint64_t HashIp6(const Ip6Address& addr) {
  const auto& b = addr.bytes();
  auto load64 = [&](int i) {
    uint64_t v = 0;
    for (int k = 0; k < 8; ++k) {
      v = (v << 8) | b[static_cast<size_t>(i + k)];
    }
    return v;
  };
  auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  return mix(load64(0) + 0x9e3779b97f4a7c15ull * mix(load64(8)));
}

}  // namespace micropnp

template <>
struct std::hash<micropnp::Ip6Address> {
  size_t operator()(const micropnp::Ip6Address& addr) const noexcept {
    return static_cast<size_t>(micropnp::HashIp6(addr));
  }
};

#endif  // SRC_NET_IP6_H_
