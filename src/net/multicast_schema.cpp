#include "src/net/multicast_schema.h"

namespace micropnp {

NetworkPrefix48 PrefixOf(const Ip6Address& unicast) {
  NetworkPrefix48 prefix = 0;
  for (int i = 0; i < 6; ++i) {
    prefix = (prefix << 8) | unicast.bytes()[i];
  }
  return prefix;
}

Ip6Address PeripheralGroup(NetworkPrefix48 prefix, DeviceTypeId id) {
  Ip6Address addr;
  addr.set_group(0, kMulticastGroup0);
  addr.set_group(1, kMulticastGroup1);
  addr.set_group(2, static_cast<uint16_t>((prefix >> 32) & 0xffff));
  addr.set_group(3, static_cast<uint16_t>((prefix >> 16) & 0xffff));
  addr.set_group(4, static_cast<uint16_t>(prefix & 0xffff));
  addr.set_group(5, 0);  // 16 bits of padding (Figure 9)
  addr.set_group(6, static_cast<uint16_t>(id >> 16));
  addr.set_group(7, static_cast<uint16_t>(id & 0xffff));
  return addr;
}

Ip6Address AllPeripheralsGroup(NetworkPrefix48 prefix) {
  return PeripheralGroup(prefix, kDeviceTypeAllPeripherals);
}

Ip6Address AllClientsGroup(NetworkPrefix48 prefix) {
  return PeripheralGroup(prefix, kDeviceTypeAllClients);
}

bool IsMicroPnpGroup(const Ip6Address& addr) {
  return addr.group(0) == kMulticastGroup0 && addr.group(1) == kMulticastGroup1 &&
         addr.group(5) == 0;
}

std::optional<DeviceTypeId> GroupPeripheral(const Ip6Address& addr) {
  if (!IsMicroPnpGroup(addr)) {
    return std::nullopt;
  }
  return (static_cast<DeviceTypeId>(addr.group(6)) << 16) | addr.group(7);
}

std::optional<NetworkPrefix48> GroupPrefix(const Ip6Address& addr) {
  if (!IsMicroPnpGroup(addr)) {
    return std::nullopt;
  }
  return (static_cast<NetworkPrefix48>(addr.group(2)) << 32) |
         (static_cast<NetworkPrefix48>(addr.group(3)) << 16) | addr.group(4);
}

}  // namespace micropnp
