#include "src/model/model_server.h"

#include <algorithm>

#include "src/common/logging.h"

namespace micropnp {

ModelServer::ModelServer(Scheduler& scheduler, MicroPnpClient& client, ModelCatalog catalog,
                         const ModelServerConfig& config)
    : scheduler_(scheduler), client_(client), catalog_(std::move(catalog)), config_(config) {
  if (config_.hook_advertisements) {
    client_.set_advertisement_listener(
        [this](const Ip6Address& thing, const std::vector<AdvertisedPeripheral>& peripherals) {
          ObserveAdvertisement(thing, peripherals);
        });
  }
}

// --- fleet -------------------------------------------------------------------

void ModelServer::ObserveAdvertisement(const Ip6Address& thing,
                                       const std::vector<AdvertisedPeripheral>& peripherals) {
  std::map<DeviceTypeId, DeviceModel> devices;
  for (const AdvertisedPeripheral& peripheral : peripherals) {
    // Catalog first (richest: real names and arities), the advertised
    // facets TLV second (lets the gateway type a driver it has never
    // seen), and a read-only protocol-default model last — every μPnP
    // peripheral answers (10) reads once its driver is installed.
    if (const DeviceModel* known = catalog_.Find(peripheral.type)) {
      devices.emplace(peripheral.type, *known);
      continue;
    }
    ModelFacets facets;
    if (!FindFacetsTlv(peripheral.info, &facets)) {
      facets.readable = true;
    }
    devices.emplace(peripheral.type, ModelFromFacets(peripheral.type, facets));
  }

  // Peripherals no longer advertised were unplugged: their cached values
  // and fan-outs are now about a device that is gone.
  auto fleet_it = fleet_.find(thing);
  if (fleet_it != fleet_.end()) {
    for (const auto& [device, model] : fleet_it->second) {
      if (!devices.contains(device)) {
        DropDevice(Key{thing, device});
      }
    }
  }
  if (devices.empty()) {
    fleet_.erase(thing);
  } else {
    fleet_[thing] = std::move(devices);
  }
}

void ModelServer::RefreshFleet(DeviceTypeId device, double window_ms,
                               RefreshCallback callback) {
  client_.Discover(device, window_ms,
                   [this, callback = std::move(callback)](
                       Result<std::vector<MicroPnpClient::DiscoveredThing>> things) {
                     if (!things.ok()) {
                       if (callback) {
                         callback(things.status());
                       }
                       return;
                     }
                     for (const MicroPnpClient::DiscoveredThing& thing : *things) {
                       ObserveAdvertisement(thing.address, thing.peripherals);
                     }
                     if (callback) {
                       callback(things->size());
                     }
                   });
}

const DeviceModel* ModelServer::ModelFor(const Ip6Address& thing, DeviceTypeId device) const {
  auto fleet_it = fleet_.find(thing);
  if (fleet_it == fleet_.end()) {
    return nullptr;
  }
  auto device_it = fleet_it->second.find(device);
  return device_it == fleet_it->second.end() ? nullptr : &device_it->second;
}

double ModelServer::TtlFor(DeviceTypeId device) const {
  auto it = ttl_overrides_.find(device);
  return it == ttl_overrides_.end() ? config_.default_ttl_ms : it->second;
}

RequestOptions ModelServer::DeviceOptions() const {
  RequestOptions options;
  options.deadline_ms = config_.device_timeout_ms;
  options.max_retransmits = config_.device_retransmits;
  return options;
}

// --- property access ---------------------------------------------------------

void ModelServer::ReadValue(const Ip6Address& thing, DeviceTypeId device,
                            ReadCallback callback) {
  const DeviceModel* model = ModelFor(thing, device);
  if (model == nullptr) {
    ++counters_.model_misses;
    callback(NotFound("no model for thing/device"));
    return;
  }
  if (!model->readable()) {
    ++counters_.model_misses;
    callback(FailedPrecondition("property is not readable"));
    return;
  }
  ++counters_.reads;

  const Key key{thing, device};
  CacheEntry& entry = cache_[key];
  const double ttl_ms = TtlFor(device);
  const bool fresh = entry.has_value && ttl_ms > 0.0 &&
                     (scheduler_.now() - entry.fetched_at) <= SimTime::FromMillis(ttl_ms);
  if (fresh) {
    ++counters_.cache_hits;
    callback(entry.value);
    return;
  }

  ++counters_.cache_misses;
  if (entry.fetching) {
    // Single-flight: a fetch is already in the air; join its cohort.
    ++counters_.coalesced_reads;
    entry.waiters.push_back(std::move(callback));
    return;
  }
  ++counters_.device_reads;
  entry.fetching = true;
  entry.waiters.push_back(std::move(callback));
  client_.Read(
      thing, device,
      [this, key](Result<WireValue> result) { OnFetchDone(key, std::move(result)); },
      DeviceOptions());
}

void ModelServer::OnFetchDone(const Key& key, Result<WireValue> result) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    // Device dropped while the fetch was in the air; DropDevice already
    // failed the waiters.
    return;
  }
  CacheEntry& entry = it->second;
  entry.fetching = false;
  if (result.ok()) {
    entry.value = *result;
    entry.fetched_at = scheduler_.now();
    entry.has_value = true;
  } else {
    ++counters_.read_failures;
  }
  // Waiters may re-enter ReadValue; drain from a local copy.
  std::vector<ReadCallback> waiters = std::move(entry.waiters);
  entry.waiters.clear();
  for (ReadCallback& waiter : waiters) {
    if (waiter) {
      waiter(result);
    }
  }
}

void ModelServer::WriteValue(const Ip6Address& thing, DeviceTypeId device, int32_t value,
                             WriteCallback callback) {
  const DeviceModel* model = ModelFor(thing, device);
  if (model == nullptr) {
    ++counters_.model_misses;
    callback(NotFound("no model for thing/device"));
    return;
  }
  if (!model->writable()) {
    ++counters_.model_misses;
    callback(FailedPrecondition("property is not writable"));
    return;
  }
  ++counters_.writes;
  ++counters_.device_writes;
  const Key key{thing, device};
  client_.Write(
      thing, device, value,
      [this, key, value, callback = std::move(callback)](Status status) {
        if (status.ok()) {
          // Write-through: the acked value is the device's current state,
          // so the next read inside the TTL is a hit.
          WireValue written;
          written.scalar = value;
          StoreValue(key, written);
        } else {
          ++counters_.write_failures;
        }
        if (callback) {
          callback(status);
        }
      },
      DeviceOptions());
}

void ModelServer::StoreValue(const Key& key, const WireValue& value) {
  CacheEntry& entry = cache_[key];
  entry.value = value;
  entry.fetched_at = scheduler_.now();
  entry.has_value = true;
}

// --- fan-out -----------------------------------------------------------------

Result<SubscriptionId> ModelServer::Subscribe(const Ip6Address& thing, DeviceTypeId device,
                                              ValueCallback on_value) {
  const DeviceModel* model = ModelFor(thing, device);
  if (model == nullptr) {
    ++counters_.model_misses;
    return NotFound("no model for thing/device");
  }
  if (!model->streamable()) {
    ++counters_.model_misses;
    return FailedPrecondition("device has no telemetry channel");
  }
  const Key key{thing, device};
  Fanout& fanout = fanouts_[key];
  const bool first = fanout.subscribers.empty();
  const SubscriptionId id = next_subscription_++;
  fanout.subscribers.emplace(id, std::move(on_value));
  if (first) {
    StartUpstream(key);
  }
  return id;
}

void ModelServer::Unsubscribe(const Ip6Address& thing, DeviceTypeId device, SubscriptionId id) {
  const Key key{thing, device};
  auto it = fanouts_.find(key);
  if (it == fanouts_.end() || it->second.subscribers.erase(id) == 0) {
    return;
  }
  if (!it->second.subscribers.empty()) {
    return;
  }
  // Last subscriber gone: erasing the fanout makes every pending upstream
  // callback stale, then stop the stream.  A (14) racing the stop is
  // recovered inside OnUpstreamValue (it re-issues the stop; the Thing's
  // stop is idempotent).
  fanouts_.erase(it);
  client_.StopStream(thing, device);
}

void ModelServer::StartUpstream(const Key& key) {
  auto it = fanouts_.find(key);
  if (it == fanouts_.end()) {
    return;
  }
  Fanout& fanout = it->second;
  const uint64_t generation = ++upstream_generation_;
  fanout.generation = generation;
  fanout.retry_pending = false;
  client_.StartStream(
      key.first, key.second, config_.stream_period_ms,
      [this, key, generation](const WireValue& value) {
        OnUpstreamValue(key, generation, value);
      },
      [this, key, generation]() { OnUpstreamClosed(key, generation); }, DeviceOptions());
}

void ModelServer::OnUpstreamValue(const Key& key, uint64_t generation, const WireValue& value) {
  auto it = fanouts_.find(key);
  if (it == fanouts_.end()) {
    // A (14) from an upstream life we already abandoned: the client-side
    // subscription survived our teardown race — close it for real.
    client_.StopStream(key.first, key.second);
    return;
  }
  if (it->second.generation != generation) {
    // A newer upstream life is in progress for this key; its own (13) or
    // stop transaction will replace/close the subscription that delivered
    // this stale value.
    return;
  }
  Fanout& fanout = it->second;
  ++fanout.upstream_events;
  ++counters_.upstream_events;
  // Telemetry is a fresh device value: feed the last-value cache so
  // subscribed properties read as hits without any device transaction.
  StoreValue(key, value);
  // First delivery after (re)establish: the upstream is healthy again.
  fanout.backoff_ms = 0.0;
  // Subscribers may unsubscribe (or subscribe) from inside the callback;
  // deliver to a snapshot and re-check membership per subscriber.
  std::vector<SubscriptionId> ids;
  ids.reserve(fanout.subscribers.size());
  for (const auto& [id, callback] : fanout.subscribers) {
    ids.push_back(id);
  }
  for (const SubscriptionId id : ids) {
    auto fanout_it = fanouts_.find(key);
    if (fanout_it == fanouts_.end() || fanout_it->second.generation != generation) {
      break;
    }
    auto sub_it = fanout_it->second.subscribers.find(id);
    if (sub_it == fanout_it->second.subscribers.end() || !sub_it->second) {
      continue;
    }
    ++fanout_it->second.delivered;
    ++counters_.fanout_delivered;
    sub_it->second(value);
  }
}

void ModelServer::OnUpstreamClosed(const Key& key, uint64_t generation) {
  auto it = fanouts_.find(key);
  if (it == fanouts_.end() || it->second.generation != generation) {
    return;
  }
  Fanout& fanout = it->second;
  if (fanout.subscribers.empty() || fanout.retry_pending) {
    return;
  }
  // The upstream died while subscribers remain ((15) from an unplug, a lost
  // (13), another client's stop): re-establish on a capped doubling ladder.
  fanout.backoff_ms = fanout.backoff_ms <= 0.0
                          ? config_.restream_backoff_min_ms
                          : std::min(fanout.backoff_ms * 2.0, config_.restream_backoff_max_ms);
  fanout.retry_pending = true;
  ++counters_.upstream_restarts;
  scheduler_.ScheduleAfter(SimTime::FromMillis(fanout.backoff_ms), [this, key, generation] {
    auto retry_it = fanouts_.find(key);
    if (retry_it == fanouts_.end() || retry_it->second.generation != generation ||
        retry_it->second.subscribers.empty()) {
      return;
    }
    StartUpstream(key);
  });
}

// --- teardown ----------------------------------------------------------------

void ModelServer::DropDevice(const Key& key) {
  auto cache_it = cache_.find(key);
  if (cache_it != cache_.end()) {
    std::vector<ReadCallback> waiters = std::move(cache_it->second.waiters);
    cache_.erase(cache_it);
    for (ReadCallback& waiter : waiters) {
      if (waiter) {
        waiter(Unavailable("device unplugged"));
      }
    }
  }
  auto fanout_it = fanouts_.find(key);
  if (fanout_it != fanouts_.end()) {
    counters_.dropped_subscribers += fanout_it->second.subscribers.size();
    fanouts_.erase(fanout_it);  // pending stream/retry callbacks go stale
    client_.StopStream(key.first, key.second);
  }
}

std::vector<ModelServer::FanoutStat> ModelServer::FanoutStats() const {
  std::vector<FanoutStat> stats;
  stats.reserve(fanouts_.size());
  for (const auto& [key, fanout] : fanouts_) {
    FanoutStat stat;
    stat.thing = key.first;
    stat.device = key.second;
    stat.subscribers = fanout.subscribers.size();
    stat.upstream_events = fanout.upstream_events;
    stat.delivered = fanout.delivered;
    stats.push_back(stat);
  }
  return stats;
}

// --- ModelClient -------------------------------------------------------------

Result<SubscriptionId> ModelClient::Subscribe(const Ip6Address& thing, DeviceTypeId device,
                                              ModelServer::ValueCallback on_value) {
  Result<SubscriptionId> id = server_->Subscribe(thing, device, std::move(on_value));
  if (id.ok()) {
    subscriptions_.push_back(OwnedSubscription{thing, device, *id});
  }
  return id;
}

void ModelClient::Unsubscribe(const Ip6Address& thing, DeviceTypeId device, SubscriptionId id) {
  auto it = std::find_if(subscriptions_.begin(), subscriptions_.end(),
                         [&](const OwnedSubscription& sub) { return sub.id == id; });
  if (it != subscriptions_.end()) {
    subscriptions_.erase(it);
  }
  server_->Unsubscribe(thing, device, id);
}

void ModelClient::UnsubscribeAll() {
  std::vector<OwnedSubscription> subscriptions = std::move(subscriptions_);
  subscriptions_.clear();
  for (const OwnedSubscription& sub : subscriptions) {
    server_->Unsubscribe(sub.thing, sub.device, sub.id);
  }
}

}  // namespace micropnp
