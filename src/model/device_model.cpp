#include "src/model/device_model.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string_view>

#include "src/core/driver_sources.h"
#include "src/dsl/parser.h"

namespace micropnp {

namespace {

// Orders the model surface deterministically: properties/telemetry first
// (there is at most one of each today), commands by event id.
void SortModel(DeviceModel& model) {
  std::sort(model.commands.begin(), model.commands.end(),
            [](const ModelCommand& a, const ModelCommand& b) { return a.event < b.event; });
}

std::string FallbackName(DeviceTypeId id, const std::string& name) {
  return name.empty() ? FormatDeviceTypeId(id) : name;
}

void AddValueSurface(DeviceModel& model, bool readable, bool writable) {
  if (!readable && !writable) {
    return;
  }
  ModelProperty value;
  value.name = "value";
  value.access = writable ? PropertyAccess::kReadWrite : PropertyAccess::kReadOnly;
  model.properties.push_back(std::move(value));
  if (readable) {
    // The stream path serves any readable peripheral periodically, so every
    // readable property doubles as a telemetry channel.
    model.telemetry.push_back(ModelTelemetry{"value"});
  }
}

bool IsCommandEvent(EventId id) { return id >= kEventCustomBase && !IsErrorEvent(id); }

// Name for a command whose handler name is unknown (image/facets derivation).
std::string SyntheticCommandName(EventId event) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "cmd_0x%02x", event);
  return std::string(buf);
}

}  // namespace

const char* ModelSourceName(ModelSource source) {
  switch (source) {
    case ModelSource::kDslSource:
      return "dsl-source";
    case ModelSource::kDslImage:
      return "dsl-image";
    case ModelSource::kNativeManifest:
      return "native-manifest";
    case ModelSource::kAdvertisement:
      return "advertisement";
  }
  return "unknown";
}

bool DeviceModel::readable() const { return !properties.empty() && !telemetry.empty(); }

bool DeviceModel::writable() const {
  return std::any_of(properties.begin(), properties.end(), [](const ModelProperty& p) {
    return p.access == PropertyAccess::kReadWrite;
  });
}

Result<DeviceModel> DeriveModelFromSource(const std::string& dsl_source,
                                          const std::string& name) {
  Result<DriverAst> ast = ParseDriver(dsl_source);
  if (!ast.ok()) {
    return ast.status();
  }
  DeviceModel model;
  model.device_id = ast->device_id;
  model.name = FallbackName(ast->device_id, name);
  model.source = ModelSource::kDslSource;
  bool readable = false;
  bool writable = false;
  // Custom event ids are allocated by the compiler in declaration order from
  // kEventCustomBase; mirroring that here keeps AST- and image-derived
  // models id-compatible (asserted by tests/model_test.cpp).
  EventId next_custom = kEventCustomBase;
  for (const Handler& handler : ast->handlers) {
    if (handler.is_error) {
      continue;
    }
    const std::optional<EventId> well_known = WellKnownEventId(handler.name);
    if (!well_known.has_value()) {
      ModelCommand command;
      command.name = handler.name;
      command.event = next_custom++;
      command.argc = static_cast<uint8_t>(handler.params.size());
      model.commands.push_back(std::move(command));
      continue;
    }
    readable = readable || *well_known == kEventRead;
    writable = writable || *well_known == kEventWrite;
  }
  AddValueSurface(model, readable, writable);
  SortModel(model);
  return model;
}

DeviceModel DeriveModelFromImage(const DriverImage& image, const std::string& name) {
  DeviceModel model;
  model.device_id = image.device_id;
  model.name = FallbackName(image.device_id, name);
  model.source = ModelSource::kDslImage;
  bool readable = false;
  bool writable = false;
  for (const HandlerEntry& handler : image.handlers) {
    if (IsCommandEvent(handler.event)) {
      ModelCommand command;
      command.name = SyntheticCommandName(handler.event);
      command.event = handler.event;
      command.argc = handler.argc;
      model.commands.push_back(std::move(command));
      continue;
    }
    readable = readable || handler.event == kEventRead;
    writable = writable || handler.event == kEventWrite;
  }
  AddValueSurface(model, readable, writable);
  SortModel(model);
  return model;
}

DeviceModel DeriveModelFromNative(const NativeDriverInfo& native) {
  DeviceModel model;
  model.device_id = native.device_id;
  model.name = native.name;
  model.source = ModelSource::kNativeManifest;
  // Native drivers are C entry points, not event handlers: the manifest's
  // source is scanned for `native_*` entry-point identifiers containing
  // _read / _write.  Only entry points count — internal register helpers
  // like bmp180_write_reg are bus plumbing, not a writable device surface.
  // All four Table 3 rows are read-only sensors.
  const std::string_view source(native.source);
  bool readable = false;
  bool writable = false;
  size_t pos = 0;
  while ((pos = source.find("native_", pos)) != std::string_view::npos) {
    size_t end = pos;
    while (end < source.size() &&
           (std::isalnum(static_cast<unsigned char>(source[end])) || source[end] == '_')) {
      ++end;
    }
    const std::string_view ident = source.substr(pos, end - pos);
    readable = readable || ident.find("_read") != std::string_view::npos;
    writable = writable || ident.find("_write") != std::string_view::npos;
    pos = end;
  }
  AddValueSurface(model, readable, writable);
  return model;
}

// --- facets ------------------------------------------------------------------

uint16_t ModelFacets::Encode() const {
  uint16_t wire = 0;
  if (readable) {
    wire |= kModelFacetReadable;
  }
  if (writable) {
    wire |= kModelFacetWritable;
  }
  wire |= static_cast<uint16_t>(command_count) << 8;
  return wire;
}

ModelFacets ModelFacets::Decode(uint16_t wire) {
  ModelFacets facets;
  facets.readable = (wire & kModelFacetReadable) != 0;
  facets.writable = (wire & kModelFacetWritable) != 0;
  facets.command_count = static_cast<uint8_t>(wire >> 8);
  return facets;
}

ModelFacets FacetsOf(const DeviceModel& model) {
  ModelFacets facets;
  facets.readable = model.readable();
  facets.writable = model.writable();
  facets.command_count = static_cast<uint8_t>(std::min<size_t>(model.commands.size(), 255));
  return facets;
}

ModelFacets FacetsFromHandledEvents(std::span<const EventId> events) {
  ModelFacets facets;
  size_t commands = 0;
  for (const EventId event : events) {
    facets.readable = facets.readable || event == kEventRead;
    facets.writable = facets.writable || event == kEventWrite;
    if (IsCommandEvent(event)) {
      ++commands;
    }
  }
  facets.command_count = static_cast<uint8_t>(std::min<size_t>(commands, 255));
  return facets;
}

DeviceModel ModelFromFacets(DeviceTypeId device_id, const ModelFacets& facets) {
  DeviceModel model;
  model.device_id = device_id;
  model.name = FormatDeviceTypeId(device_id);
  model.source = ModelSource::kAdvertisement;
  AddValueSurface(model, facets.readable, facets.writable);
  for (uint8_t i = 0; i < facets.command_count; ++i) {
    ModelCommand command;
    command.event = static_cast<EventId>(kEventCustomBase + i);
    command.name = SyntheticCommandName(command.event);
    model.commands.push_back(std::move(command));
  }
  return model;
}

bool FindFacetsTlv(const TlvList& info, ModelFacets* out) {
  const Tlv* tlv = info.Find(TlvType::kModelFacets);
  if (tlv == nullptr) {
    return false;
  }
  const std::optional<uint16_t> wire = tlv->AsU16();
  if (!wire.has_value()) {
    return false;
  }
  *out = ModelFacets::Decode(*wire);
  return true;
}

// --- catalog -----------------------------------------------------------------

ModelCatalog ModelCatalog::BuiltIn() {
  ModelCatalog catalog;
  // Native manifest first, DSL models second: Register replaces, so the
  // richer DSL-source model wins whenever both cover one device id.
  for (const NativeDriverInfo& native : NativeDrivers()) {
    catalog.Register(DeriveModelFromNative(native));
  }
  for (const BundledDriver& driver : BundledDrivers()) {
    Result<DeviceModel> model = DeriveModelFromSource(driver.source, driver.name);
    if (model.ok()) {
      catalog.Register(*std::move(model));
    }
  }
  return catalog;
}

void ModelCatalog::Register(DeviceModel model) {
  const DeviceTypeId id = model.device_id;
  models_.insert_or_assign(id, std::move(model));
}

const DeviceModel* ModelCatalog::Find(DeviceTypeId device_id) const {
  auto it = models_.find(device_id);
  return it == models_.end() ? nullptr : &it->second;
}

}  // namespace micropnp
