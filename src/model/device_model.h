// Typed device models for the northbound gateway tier.
//
// μPnP solves the southbound half of plug-and-play: a peripheral is
// identified, its driver installed, and its values readable one transaction
// at a time.  The model layer is the production tier above that (the Azure
// IoT Plug-and-Play / W3C WoT "Thing Description" mold): every discovered
// peripheral gets a typed DeviceModel — telemetry channels, read-only vs
// writable properties, commands — derived automatically from the driver
// metadata the system already has:
//
//  * a DSL driver source (richest: handler names and arities from the AST),
//  * a compiled DriverImage (handler event ids only; names synthesized),
//  * a Table 3 native-driver manifest entry (entry-point scan), or
//  * the model-facets TLV a Thing advertises (kModelFacets, emitted from the
//    installed image's handled events — lets a gateway model Things whose
//    driver it has never seen).
//
// Derivation rules (docs/MODEL.md):
//  * a `read` handler   -> property "value" + telemetry channel "value"
//                          (the Thing's stream path (12)..(15) serves any
//                          readable peripheral periodically);
//  * a `write` handler  -> property "value" becomes writable;
//  * driver-private handlers (event id in [0x40, 0x80)) -> commands
//    (descriptive metadata; the wire protocol cannot invoke them remotely);
//  * error handlers and lifecycle/bus-internal events (init, destroy,
//    newdata, tick) are runtime plumbing, never model surface.

#ifndef SRC_MODEL_DEVICE_MODEL_H_
#define SRC_MODEL_DEVICE_MODEL_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/baseline/table3.h"
#include "src/common/status.h"
#include "src/common/tlv.h"
#include "src/common/types.h"
#include "src/dsl/driver_image.h"
#include "src/dsl/events.h"

namespace micropnp {

// Where a model's metadata came from, in decreasing order of richness.
enum class ModelSource : uint8_t {
  kDslSource = 0,       // parsed driver AST: names + arities
  kDslImage = 1,        // compiled image: event ids, names synthesized
  kNativeManifest = 2,  // Table 3 manifest entry
  kAdvertisement = 3,   // kModelFacets TLV from a live advertisement
};

const char* ModelSourceName(ModelSource source);

enum class PropertyAccess : uint8_t { kReadOnly = 0, kReadWrite = 1 };

// A property is addressable state served over (10)/(11) reads and — when
// writable — (16)/(17) writes.  μPnP drivers expose one value per
// peripheral, so the property is canonically named "value".
struct ModelProperty {
  std::string name;
  PropertyAccess access = PropertyAccess::kReadOnly;

  bool operator==(const ModelProperty&) const = default;
};

// A telemetry channel is a property the Thing can push periodically over
// the stream path (12)..(15).
struct ModelTelemetry {
  std::string name;

  bool operator==(const ModelTelemetry&) const = default;
};

// A driver-private handler, surfaced as descriptive metadata ("this driver
// has a `measure` step") — the interaction protocol has no remote-invoke
// message for custom events.
struct ModelCommand {
  std::string name;
  EventId event = 0;
  uint8_t argc = 0;

  bool operator==(const ModelCommand&) const = default;
};

struct DeviceModel {
  DeviceTypeId device_id = 0;
  std::string name;  // friendly name when known ("TMP36"), else hex id
  ModelSource source = ModelSource::kDslImage;
  std::vector<ModelTelemetry> telemetry;
  std::vector<ModelProperty> properties;
  std::vector<ModelCommand> commands;

  bool readable() const;
  bool writable() const;
  bool streamable() const { return !telemetry.empty(); }

  bool operator==(const DeviceModel&) const = default;
};

// --- derivation --------------------------------------------------------------

// From DSL source: parses the driver and derives the model with real handler
// names and arities.  `name` labels the model ("" falls back to the hex id).
Result<DeviceModel> DeriveModelFromSource(const std::string& dsl_source,
                                          const std::string& name = "");

// From a compiled image: event ids only; custom-command names are
// synthesized as "cmd_0x41" etc.
DeviceModel DeriveModelFromImage(const DriverImage& image, const std::string& name = "");

// From a Table 3 native manifest row: scans the native source for read/write
// entry points (the native drivers are C functions, not event handlers).
DeviceModel DeriveModelFromNative(const NativeDriverInfo& native);

// --- model facets: the compact wire form -------------------------------------
// What a Thing can advertise about an installed driver in one u16 TLV
// (TlvType::kModelFacets): low byte = capability flags, high byte = custom
// command count.  Enough for a gateway to build a usable (if nameless)
// model for a driver it has never seen.

inline constexpr uint16_t kModelFacetReadable = 0x0001;
inline constexpr uint16_t kModelFacetWritable = 0x0002;

struct ModelFacets {
  bool readable = false;
  bool writable = false;
  uint8_t command_count = 0;

  uint16_t Encode() const;
  static ModelFacets Decode(uint16_t wire);

  bool operator==(const ModelFacets&) const = default;
};

ModelFacets FacetsOf(const DeviceModel& model);
// From the runtime's metadata export (DriverManager::HandledEventsFor).
ModelFacets FacetsFromHandledEvents(std::span<const EventId> events);
// Expands a facets TLV back into a (nameless) model.
DeviceModel ModelFromFacets(DeviceTypeId device_id, const ModelFacets& facets);
// Facets TLV from an advertisement's info list; false when absent/malformed.
bool FindFacetsTlv(const TlvList& info, ModelFacets* out);

// --- catalog -----------------------------------------------------------------

// DeviceTypeId -> DeviceModel registry.  BuiltIn() derives a model for every
// bundled DSL driver and fills remaining device ids from the Table 3 native
// manifest, so the gateway can type the whole reproduction fleet offline.
class ModelCatalog {
 public:
  // Preference order on collision: DSL-source models (richer) win over
  // native-manifest models.
  static ModelCatalog BuiltIn();

  // Inserts or replaces (register always wins; callers order by richness).
  void Register(DeviceModel model);
  const DeviceModel* Find(DeviceTypeId device_id) const;
  size_t size() const { return models_.size(); }
  const std::map<DeviceTypeId, DeviceModel>& models() const { return models_; }

 private:
  std::map<DeviceTypeId, DeviceModel> models_;
};

}  // namespace micropnp

#endif  // SRC_MODEL_DEVICE_MODEL_H_
