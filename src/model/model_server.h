// The northbound device-model gateway tier (ROADMAP item 2).
//
// A ModelServer sits on top of one MicroPnpClient and serves the fleet to
// many concurrent ModelClients, decoupling client load from constrained-
// device capacity:
//
//  * Fleet tracking: every advertisement (unsolicited (1) or discovered (3))
//    updates a typed catalog of Things and their DeviceModels — resolved
//    from the built-in catalog when the driver is known, else from the
//    kModelFacets TLV the Thing advertises.
//  * Last-value cache: property reads are answered from a per-(Thing,
//    device) cache while the value is fresher than the property's TTL.
//    Concurrent reads of a stale value coalesce into ONE device
//    transaction (single-flight): the first miss issues the μPnP read,
//    everyone else joins its waiter list.
//  * Write-through: property writes ride (16)/(17) and update the cache on
//    ack, so a read after a successful write is a hit.
//  * Subscription fan-out: one upstream μPnP stream (12)..(15) per (Thing,
//    device) fans out to any number of subscribers.  Upstream telemetry
//    also feeds the last-value cache.  A dropped upstream ((15), lost (13),
//    deadline) re-establishes with capped doubling backoff for as long as
//    subscribers remain.
//
// Threading: a ModelServer is shard-affine.  It runs entirely on the
// scheduler of the shard its MicroPnpClient is pinned to and takes no
// locks; a multi-shard deployment runs one ModelServer per shard (see
// RunModelBenchSharded), exactly like every other per-shard actor on the
// PR 9 runtime.
//
// Counter invariants (checked by tests and the bench):
//   cache_hits + cache_misses == reads
//   coalesced_reads + device_reads == cache_misses
//   amplification = device_reads / reads  (the headline metric: ~1/M for
//   M clients reading inside one TTL window)

#ifndef SRC_MODEL_MODEL_SERVER_H_
#define SRC_MODEL_MODEL_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/model/device_model.h"
#include "src/proto/client.h"

namespace micropnp {

struct ModelServerConfig {
  // Freshness budget for cached property values; <= 0 disables caching.
  // Per-device overrides via ModelServer::SetTtl.
  double default_ttl_ms = 1000.0;
  // Period requested from upstream streams backing subscriptions.
  uint32_t stream_period_ms = 1000;
  // Deadline for upstream device reads/writes.
  double device_timeout_ms = 2000.0;
  // Upstream retransmit budget: lossy links need retries for the
  // single-flight read not to fail a whole waiter cohort.
  int device_retransmits = 4;
  // Re-establish ladder for dropped upstream streams.
  double restream_backoff_min_ms = 250.0;
  double restream_backoff_max_ms = 8000.0;
  // Install this server as the client's advertisement listener so live
  // (1)s keep the fleet current.  Off when the embedder multiplexes the
  // listener itself.
  bool hook_advertisements = true;
};

struct ModelServerCounters {
  // Read path.
  uint64_t reads = 0;        // modeled property reads accepted
  uint64_t cache_hits = 0;   // answered from a fresh cached value
  uint64_t cache_misses = 0; // stale/cold: hits + misses == reads
  uint64_t coalesced_reads = 0;  // joined an in-flight fetch (single-flight)
  uint64_t device_reads = 0;     // μPnP (10) transactions actually issued
  uint64_t read_failures = 0;    // device fetches that completed non-OK
  uint64_t model_misses = 0;     // reads/writes of unmodeled (thing, device)
  // Write path.
  uint64_t writes = 0;
  uint64_t device_writes = 0;
  uint64_t write_failures = 0;
  // Fan-out.
  uint64_t fanout_delivered = 0;  // subscriber callbacks invoked
  uint64_t upstream_events = 0;   // (14)s received across all fan-outs
  uint64_t upstream_restarts = 0; // re-establish attempts after a drop
  uint64_t dropped_subscribers = 0;  // subscriptions killed by device unplug
};

using SubscriptionId = uint64_t;

class ModelServer {
 public:
  using ReadCallback = std::function<void(Result<WireValue>)>;
  using WriteCallback = std::function<void(Status)>;
  using ValueCallback = std::function<void(const WireValue&)>;
  using RefreshCallback = std::function<void(Result<size_t>)>;  // things seen

  ModelServer(Scheduler& scheduler, MicroPnpClient& client,
              ModelCatalog catalog = ModelCatalog::BuiltIn(),
              const ModelServerConfig& config = {});

  // --- fleet ------------------------------------------------------------------
  // Ingests an advertisement: models every listed peripheral (catalog first,
  // facets TLV fallback) and drops state for peripherals no longer listed
  // (their cache entries are invalidated, in-flight readers fail with
  // kUnavailable, and their fan-outs are torn down).
  void ObserveAdvertisement(const Ip6Address& thing,
                            const std::vector<AdvertisedPeripheral>& peripherals);
  // Active discovery sweep for `device`; every response feeds
  // ObserveAdvertisement.  Reports the number of Things that answered.
  void RefreshFleet(DeviceTypeId device, double window_ms, RefreshCallback callback);

  // Model for a tracked (thing, device); nullptr when unknown.
  const DeviceModel* ModelFor(const Ip6Address& thing, DeviceTypeId device) const;
  size_t fleet_size() const { return fleet_.size(); }
  const ModelCatalog& catalog() const { return catalog_; }

  // --- property access --------------------------------------------------------
  void ReadValue(const Ip6Address& thing, DeviceTypeId device, ReadCallback callback);
  void WriteValue(const Ip6Address& thing, DeviceTypeId device, int32_t value,
                  WriteCallback callback);

  // --- telemetry subscriptions ------------------------------------------------
  // Registers a subscriber; the first subscriber of a (thing, device)
  // starts the upstream stream, later ones share it.  Fails for unmodeled
  // or non-streamable targets.
  Result<SubscriptionId> Subscribe(const Ip6Address& thing, DeviceTypeId device,
                                   ValueCallback on_value);
  // Drops a subscriber; the last one stops the upstream stream.
  void Unsubscribe(const Ip6Address& thing, DeviceTypeId device, SubscriptionId id);

  // --- introspection ----------------------------------------------------------
  // TTL override for one device type (e.g. a fast-moving sensor).
  void SetTtl(DeviceTypeId device, double ttl_ms) { ttl_overrides_[device] = ttl_ms; }
  double TtlFor(DeviceTypeId device) const;

  struct FanoutStat {
    Ip6Address thing;
    DeviceTypeId device = 0;
    size_t subscribers = 0;
    uint64_t upstream_events = 0;
    uint64_t delivered = 0;
  };
  std::vector<FanoutStat> FanoutStats() const;

  const ModelServerCounters& counters() const { return counters_; }

 private:
  using Key = std::pair<Ip6Address, DeviceTypeId>;

  struct CacheEntry {
    WireValue value;
    SimTime fetched_at;
    bool has_value = false;
    bool fetching = false;  // single-flight: one (10) in the air, max
    std::vector<ReadCallback> waiters;
  };

  struct Fanout {
    std::map<SubscriptionId, ValueCallback> subscribers;
    // Guard against stale stream callbacks: every upstream (re)start takes
    // a fresh value from the server-wide generation counter, so callbacks
    // from a previous upstream life — even one belonging to an erased and
    // re-created fanout of the same key — can never alias a live one.
    uint64_t generation = 0;
    double backoff_ms = 0.0;
    bool retry_pending = false;
    uint64_t upstream_events = 0;
    uint64_t delivered = 0;
  };

  void StartUpstream(const Key& key);
  void OnUpstreamValue(const Key& key, uint64_t generation, const WireValue& value);
  void OnUpstreamClosed(const Key& key, uint64_t generation);
  void OnFetchDone(const Key& key, Result<WireValue> result);
  void StoreValue(const Key& key, const WireValue& value);
  void DropDevice(const Key& key);
  RequestOptions DeviceOptions() const;

  Scheduler& scheduler_;
  MicroPnpClient& client_;
  ModelCatalog catalog_;
  ModelServerConfig config_;
  std::map<Ip6Address, std::map<DeviceTypeId, DeviceModel>> fleet_;
  std::map<Key, CacheEntry> cache_;
  std::map<Key, Fanout> fanouts_;
  std::map<DeviceTypeId, double> ttl_overrides_;
  SubscriptionId next_subscription_ = 1;
  uint64_t upstream_generation_ = 0;
  ModelServerCounters counters_;
};

// A northbound consumer handle: forwards to its ModelServer and remembers
// its own subscriptions so teardown is one call.  Many ModelClients share
// one server; the M in the bench's M×N sweep.
class ModelClient {
 public:
  explicit ModelClient(ModelServer& server) : server_(&server) {}
  ~ModelClient() { UnsubscribeAll(); }

  ModelClient(const ModelClient&) = delete;
  ModelClient& operator=(const ModelClient&) = delete;

  void ReadValue(const Ip6Address& thing, DeviceTypeId device,
                 ModelServer::ReadCallback callback) {
    server_->ReadValue(thing, device, std::move(callback));
  }
  void WriteValue(const Ip6Address& thing, DeviceTypeId device, int32_t value,
                  ModelServer::WriteCallback callback) {
    server_->WriteValue(thing, device, value, std::move(callback));
  }
  Result<SubscriptionId> Subscribe(const Ip6Address& thing, DeviceTypeId device,
                                   ModelServer::ValueCallback on_value);
  void Unsubscribe(const Ip6Address& thing, DeviceTypeId device, SubscriptionId id);
  void UnsubscribeAll();

  size_t active_subscriptions() const { return subscriptions_.size(); }
  ModelServer& server() { return *server_; }

 private:
  struct OwnedSubscription {
    Ip6Address thing;
    DeviceTypeId device = 0;
    SubscriptionId id = 0;
  };

  ModelServer* server_;
  std::vector<OwnedSubscription> subscriptions_;
};

}  // namespace micropnp

#endif  // SRC_MODEL_MODEL_SERVER_H_
