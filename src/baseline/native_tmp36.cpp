#include "src/baseline/native_tmp36.h"

namespace micropnp {

// ADC configuration values the driver author must know from the MCU
// datasheet (Section 2.2: "developers must understand how to use Analog to
// Digital Converter (ADC) registers and be aware of ADC resolution, supply
// voltage and reference voltage").
#define TMP36_ADC_PRESCALER 128
#define TMP36_ADC_REF_VDD 0
#define TMP36_ADC_RESOLUTION_BITS 10
#define TMP36_VREF_VOLTS 3.3
#define TMP36_MAX_ADC_CHANNEL 7

// TMP36 transfer function constants (sensor datasheet).
#define TMP36_OFFSET_VOLTS 0.5
#define TMP36_VOLTS_PER_DEGREE 0.01
#define TMP36_MIN_CELSIUS (-40.0)
#define TMP36_MAX_CELSIUS 125.0

int native_tmp36_init(NativeTmp36State* state, ChannelBus* bus, uint8_t adc_channel) {
  if (state == 0 || bus == 0) {
    return TMP36_ERR_NOT_INITIALIZED;
  }
  if (adc_channel > TMP36_MAX_ADC_CHANNEL) {
    return TMP36_ERR_BAD_CHANNEL;
  }
  if (!bus->IsSelected(BusKind::kAdc)) {
    return TMP36_ERR_BAD_CHANNEL;
  }
  // Program the ADC block: reference, resolution, prescaler.
  AdcConfig config;
  config.resolution_bits = TMP36_ADC_RESOLUTION_BITS;
  config.vref = Volts(TMP36_VREF_VOLTS);
  bus->adc().Configure(config);
  state->bus = bus;
  state->adc_channel = adc_channel;
  state->resolution_bits = TMP36_ADC_RESOLUTION_BITS;
  state->vref = TMP36_VREF_VOLTS;
  state->initialized = 1;
  state->busy = 0;
  return TMP36_OK;
}

void native_tmp36_destroy(NativeTmp36State* state) {
  if (state == 0) {
    return;
  }
  state->initialized = 0;
  state->busy = 0;
  state->bus = 0;
}

double native_tmp36_code_to_celsius(uint16_t code, double vref, uint8_t resolution_bits) {
  // Software floating point on the AVR: both operations below go through
  // the soft-float library.
  double full_scale = (double)((1u << resolution_bits) - 1);
  double volts = (double)code * vref / full_scale;
  return (volts - TMP36_OFFSET_VOLTS) / TMP36_VOLTS_PER_DEGREE;
}

int native_tmp36_read_celsius(NativeTmp36State* state, double* out_celsius) {
  if (state == 0 || state->initialized == 0) {
    return TMP36_ERR_NOT_INITIALIZED;
  }
  if (state->busy != 0) {
    return TMP36_ERR_ADC_BUSY;
  }
  state->busy = 1;
  Result<uint16_t> code = state->bus->adc().Sample();
  state->busy = 0;
  if (!code.ok()) {
    return TMP36_ERR_ADC_BUSY;
  }
  double celsius = native_tmp36_code_to_celsius(*code, state->vref, state->resolution_bits);
  if (celsius < TMP36_MIN_CELSIUS || celsius > TMP36_MAX_CELSIUS) {
    return TMP36_ERR_RANGE;
  }
  if (out_celsius != 0) {
    *out_celsius = celsius;
  }
  return TMP36_OK;
}

}  // namespace micropnp
