// Native (platform-specific, C-style) ID-20LA RFID reader driver — the
// Table 3 comparator for Listing 1.
//
// The native variant owns UART configuration, the interrupt-style byte
// handler, frame assembly, checksum verification and timeout bookkeeping —
// all the platform concerns the DSL runtime absorbs.

#ifndef SRC_BASELINE_NATIVE_ID20LA_H_
#define SRC_BASELINE_NATIVE_ID20LA_H_

#include <cstdint>

#include "src/bus/channel_bus.h"
#include "src/common/status.h"

namespace micropnp {

enum NativeId20LaError {
  ID20LA_OK = 0,
  ID20LA_ERR_NOT_INITIALIZED = -1,
  ID20LA_ERR_UART_IN_USE = -2,
  ID20LA_ERR_BAD_CONFIG = -3,
  ID20LA_ERR_NO_CARD = -4,
  ID20LA_ERR_CHECKSUM = -5,
};

// One assembled 12-character payload (10 data + 2 checksum chars).
struct NativeId20LaCard {
  char payload[13];  // NUL-terminated
  int valid;
};

struct NativeId20LaState {
  ChannelBus* bus;
  int initialized;
  int listening;
  uint8_t index;
  char buffer[12];
  NativeId20LaCard last_card;
  int has_card;
};

int native_id20la_init(NativeId20LaState* state, ChannelBus* bus);
void native_id20la_destroy(NativeId20LaState* state);

// Arms reception; bytes arrive through the RX interrupt handler.
int native_id20la_start_read(NativeId20LaState* state);
void native_id20la_stop_read(NativeId20LaState* state);

// Polls for a completed, checksum-verified card read.
int native_id20la_poll(NativeId20LaState* state, NativeId20LaCard* out_card);

// Exposed for unit tests: the RX byte handler and checksum routine.
void native_id20la_on_byte(NativeId20LaState* state, uint8_t byte);
int native_id20la_verify_checksum(const char* payload12);

}  // namespace micropnp

#endif  // SRC_BASELINE_NATIVE_ID20LA_H_
