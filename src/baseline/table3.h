// Table 3 baseline manifest: the native driver variants.
//
// SLoC is *measured* from the real native driver sources in this directory
// (embedded by CMake).  Flash bytes use a documented manifest: the paper's
// avr-gcc measurements for the same four drivers, since no AVR toolchain is
// available offline (see DESIGN.md, substitution table).  The float-using
// ADC drivers carry the AVR software floating point library, which is why
// they dwarf the integer-only UART/I2C drivers.

#ifndef SRC_BASELINE_TABLE3_H_
#define SRC_BASELINE_TABLE3_H_

#include <span>

#include "src/common/types.h"

namespace micropnp {

struct NativeDriverInfo {
  const char* name;           // "TMP36 (ADC)", matching Table 3 rows
  DeviceTypeId device_id;     // the μPnP peripheral this driver serves
  const char* source;         // full native C-style source (SLoC measured)
  size_t avr_flash_bytes;     // manifest: paper-measured avr-gcc flash
  bool uses_software_float;   // pulls in the soft-float library on AVR
};

// The four Table 3 rows, in the paper's order.
std::span<const NativeDriverInfo> NativeDrivers();

}  // namespace micropnp

#endif  // SRC_BASELINE_TABLE3_H_
