// Native (platform-specific, C-style) BMP180 driver — Table 3 comparator.
//
// The native variant owns: I2C transaction handling, calibration EEPROM
// readout, conversion sequencing (ctrl_meas writes + conversion waits) and
// the full Bosch integer compensation pipeline.  Mirrors the structure of
// Bosch's reference API.

#ifndef SRC_BASELINE_NATIVE_BMP180_H_
#define SRC_BASELINE_NATIVE_BMP180_H_

#include <cstdint>

#include "src/bus/channel_bus.h"
#include "src/common/status.h"
#include "src/sim/scheduler.h"

namespace micropnp {

enum NativeBmp180Error {
  BMP180_OK = 0,
  BMP180_ERR_NOT_INITIALIZED = -1,
  BMP180_ERR_BUS = -2,
  BMP180_ERR_BAD_CHIP_ID = -3,
  BMP180_ERR_BAD_OSS = -4,
};

struct NativeBmp180Calib {
  int16_t ac1, ac2, ac3;
  uint16_t ac4, ac5, ac6;
  int16_t b1, b2;
  int16_t mb, mc, md;
};

struct NativeBmp180State {
  ChannelBus* bus;
  Scheduler* scheduler;
  NativeBmp180Calib calib;
  int32_t b5;  // from the most recent temperature conversion
  int initialized;
  uint8_t oss;
};

// Probes the chip id, reads the calibration EEPROM.
int native_bmp180_init(NativeBmp180State* state, ChannelBus* bus, Scheduler* scheduler,
                       uint8_t oss);
void native_bmp180_destroy(NativeBmp180State* state);

// Blocking measurements (the driver waits out the conversion time by
// advancing the scheduler, as a busy-waiting native driver would).
int native_bmp180_read_temperature(NativeBmp180State* state, int32_t* out_deci_celsius);
int native_bmp180_read_pressure(NativeBmp180State* state, int32_t* out_pascal);

// Compensation primitives (exposed for unit tests).
int32_t native_bmp180_compensate_temperature(const NativeBmp180Calib* calib, int32_t ut,
                                             int32_t* out_b5);
int32_t native_bmp180_compensate_pressure(const NativeBmp180Calib* calib, int32_t up, int32_t b5,
                                          uint8_t oss);

}  // namespace micropnp

#endif  // SRC_BASELINE_NATIVE_BMP180_H_
