#include "src/baseline/native_hih4030.h"

namespace micropnp {

#define HIH4030_ADC_RESOLUTION_BITS 10
#define HIH4030_SUPPLY_VOLTS 3.3
#define HIH4030_MAX_ADC_CHANNEL 7

// Transfer function constants (sensor datasheet): Vout = Vs(0.0062*RH+0.16).
#define HIH4030_SLOPE 0.0062
#define HIH4030_OFFSET 0.16
// First-order temperature compensation: RH = RH_raw / (1.0546 - 0.00216*T).
#define HIH4030_COMP_A 1.0546
#define HIH4030_COMP_B 0.00216

int native_hih4030_init(NativeHih4030State* state, ChannelBus* bus, uint8_t adc_channel) {
  if (state == 0 || bus == 0) {
    return HIH4030_ERR_NOT_INITIALIZED;
  }
  if (adc_channel > HIH4030_MAX_ADC_CHANNEL) {
    return HIH4030_ERR_BAD_CHANNEL;
  }
  if (!bus->IsSelected(BusKind::kAdc)) {
    return HIH4030_ERR_BAD_CHANNEL;
  }
  AdcConfig config;
  config.resolution_bits = HIH4030_ADC_RESOLUTION_BITS;
  config.vref = Volts(HIH4030_SUPPLY_VOLTS);
  bus->adc().Configure(config);
  state->bus = bus;
  state->adc_channel = adc_channel;
  state->supply_volts = HIH4030_SUPPLY_VOLTS;
  state->initialized = 1;
  state->busy = 0;
  return HIH4030_OK;
}

void native_hih4030_destroy(NativeHih4030State* state) {
  if (state == 0) {
    return;
  }
  state->initialized = 0;
  state->busy = 0;
  state->bus = 0;
}

double native_hih4030_volts_to_rh(double volts, double supply_volts) {
  return (volts / supply_volts - HIH4030_OFFSET) / HIH4030_SLOPE;
}

int native_hih4030_read_rh(NativeHih4030State* state, double* out_rh_pct) {
  if (state == 0 || state->initialized == 0) {
    return HIH4030_ERR_NOT_INITIALIZED;
  }
  if (state->busy != 0) {
    return HIH4030_ERR_ADC_BUSY;
  }
  state->busy = 1;
  Result<uint16_t> code = state->bus->adc().Sample();
  state->busy = 0;
  if (!code.ok()) {
    return HIH4030_ERR_ADC_BUSY;
  }
  double full_scale = (double)((1u << HIH4030_ADC_RESOLUTION_BITS) - 1);
  double volts = (double)*code * state->supply_volts / full_scale;
  double rh = native_hih4030_volts_to_rh(volts, state->supply_volts);
  if (rh < 0.0 || rh > 100.0) {
    return HIH4030_ERR_RANGE;
  }
  if (out_rh_pct != 0) {
    *out_rh_pct = rh;
  }
  return HIH4030_OK;
}

int native_hih4030_read_rh_compensated(NativeHih4030State* state, double ambient_celsius,
                                       double* out_rh_pct) {
  double raw = 0.0;
  int rc = native_hih4030_read_rh(state, &raw);
  if (rc != HIH4030_OK) {
    return rc;
  }
  double compensated = raw / (HIH4030_COMP_A - HIH4030_COMP_B * ambient_celsius);
  if (out_rh_pct != 0) {
    *out_rh_pct = compensated;
  }
  return HIH4030_OK;
}

}  // namespace micropnp
