// Native (platform-specific, C-style) TMP36 driver — the Table 3 comparator.
//
// This is what the paper's Section 2.2 describes as the state of practice:
// the driver author handles ADC registers, reference selection, resolution
// and the voltage conversion themselves, in platform code with floating
// point (which on the ATMega128RFA1 pulls in the software float library —
// the reason native ADC drivers are ~3 KB of flash in Table 3).

#ifndef SRC_BASELINE_NATIVE_TMP36_H_
#define SRC_BASELINE_NATIVE_TMP36_H_

#include <cstdint>

#include "src/bus/channel_bus.h"
#include "src/common/status.h"

namespace micropnp {

// Error codes in the classic C style.
enum NativeTmp36Error {
  TMP36_OK = 0,
  TMP36_ERR_NOT_INITIALIZED = -1,
  TMP36_ERR_ADC_BUSY = -2,
  TMP36_ERR_BAD_CHANNEL = -3,
  TMP36_ERR_RANGE = -4,
};

struct NativeTmp36State {
  ChannelBus* bus;
  uint8_t adc_channel;
  uint8_t resolution_bits;
  double vref;
  int initialized;
  int busy;
};

// Lifecycle mirrors the DSL driver's init/destroy.
int native_tmp36_init(NativeTmp36State* state, ChannelBus* bus, uint8_t adc_channel);
void native_tmp36_destroy(NativeTmp36State* state);

// Blocking read returning degrees Celsius.
int native_tmp36_read_celsius(NativeTmp36State* state, double* out_celsius);

// Raw conversion helper (exposed for unit tests).
double native_tmp36_code_to_celsius(uint16_t code, double vref, uint8_t resolution_bits);

}  // namespace micropnp

#endif  // SRC_BASELINE_NATIVE_TMP36_H_
