#include "src/baseline/native_id20la.h"

namespace micropnp {

#define ID20LA_BAUD 9600
#define ID20LA_FRAME_STX 0x02
#define ID20LA_FRAME_ETX 0x03
#define ID20LA_FRAME_CR 0x0d
#define ID20LA_FRAME_LF 0x0a
#define ID20LA_PAYLOAD_CHARS 12

static int id20la_hex_value(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

int native_id20la_verify_checksum(const char* payload12) {
  uint8_t checksum = 0;
  int i;
  for (i = 0; i < 5; ++i) {
    int hi = id20la_hex_value(payload12[2 * i]);
    int lo = id20la_hex_value(payload12[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return 0;
    }
    checksum = (uint8_t)(checksum ^ (uint8_t)((hi << 4) | lo));
  }
  int chi = id20la_hex_value(payload12[10]);
  int clo = id20la_hex_value(payload12[11]);
  if (chi < 0 || clo < 0) {
    return 0;
  }
  return checksum == (uint8_t)((chi << 4) | clo);
}

void native_id20la_on_byte(NativeId20LaState* state, uint8_t byte) {
  if (state == 0 || state->listening == 0) {
    return;
  }
  // Ignore framing characters (STX, ETX, CR, LF) exactly as Listing 1 does.
  if (byte == ID20LA_FRAME_STX || byte == ID20LA_FRAME_ETX || byte == ID20LA_FRAME_CR ||
      byte == ID20LA_FRAME_LF) {
    return;
  }
  state->buffer[state->index++] = (char)byte;
  if (state->index < ID20LA_PAYLOAD_CHARS) {
    return;
  }
  // Frame complete: verify and publish.
  state->index = 0;
  int i;
  for (i = 0; i < ID20LA_PAYLOAD_CHARS; ++i) {
    state->last_card.payload[i] = state->buffer[i];
  }
  state->last_card.payload[ID20LA_PAYLOAD_CHARS] = '\0';
  state->last_card.valid = native_id20la_verify_checksum(state->last_card.payload);
  state->has_card = 1;
}

int native_id20la_init(NativeId20LaState* state, ChannelBus* bus) {
  if (state == 0 || bus == 0) {
    return ID20LA_ERR_NOT_INITIALIZED;
  }
  if (!bus->IsSelected(BusKind::kUart)) {
    return ID20LA_ERR_BAD_CONFIG;
  }
  UartConfig config;
  config.baud = ID20LA_BAUD;
  config.parity = UartParity::kNone;
  config.stop_bits = UartStopBits::kOne;
  config.data_bits = 8;
  Status status = bus->uart().Init(config);
  if (status.code() == StatusCode::kBusy) {
    return ID20LA_ERR_UART_IN_USE;
  }
  if (!status.ok()) {
    return ID20LA_ERR_BAD_CONFIG;
  }
  state->bus = bus;
  state->initialized = 1;
  state->listening = 0;
  state->index = 0;
  state->has_card = 0;
  return ID20LA_OK;
}

void native_id20la_destroy(NativeId20LaState* state) {
  if (state == 0) {
    return;
  }
  if (state->initialized != 0 && state->bus != 0) {
    state->bus->uart().Reset();
  }
  state->initialized = 0;
  state->listening = 0;
  state->bus = 0;
}

int native_id20la_start_read(NativeId20LaState* state) {
  if (state == 0 || state->initialized == 0) {
    return ID20LA_ERR_NOT_INITIALIZED;
  }
  state->listening = 1;
  state->index = 0;
  state->has_card = 0;
  // Install the RX interrupt handler.
  state->bus->uart().set_rx_handler(
      [state](uint8_t byte) { native_id20la_on_byte(state, byte); });
  return ID20LA_OK;
}

void native_id20la_stop_read(NativeId20LaState* state) {
  if (state == 0 || state->initialized == 0) {
    return;
  }
  state->listening = 0;
  state->bus->uart().set_rx_handler(nullptr);
}

int native_id20la_poll(NativeId20LaState* state, NativeId20LaCard* out_card) {
  if (state == 0 || state->initialized == 0) {
    return ID20LA_ERR_NOT_INITIALIZED;
  }
  if (state->has_card == 0) {
    return ID20LA_ERR_NO_CARD;
  }
  state->has_card = 0;
  if (state->last_card.valid == 0) {
    return ID20LA_ERR_CHECKSUM;
  }
  if (out_card != 0) {
    *out_card = state->last_card;
  }
  return ID20LA_OK;
}

}  // namespace micropnp
