// Native (platform-specific, C-style) HIH-4030 driver — Table 3 comparator.
//
// Same shape as the native TMP36 driver: explicit ADC handling plus the
// sensor's ratiometric transfer function and first-order temperature
// compensation, all in software floating point.

#ifndef SRC_BASELINE_NATIVE_HIH4030_H_
#define SRC_BASELINE_NATIVE_HIH4030_H_

#include <cstdint>

#include "src/bus/channel_bus.h"
#include "src/common/status.h"

namespace micropnp {

enum NativeHih4030Error {
  HIH4030_OK = 0,
  HIH4030_ERR_NOT_INITIALIZED = -1,
  HIH4030_ERR_ADC_BUSY = -2,
  HIH4030_ERR_BAD_CHANNEL = -3,
  HIH4030_ERR_RANGE = -4,
};

struct NativeHih4030State {
  ChannelBus* bus;
  uint8_t adc_channel;
  double supply_volts;
  int initialized;
  int busy;
};

int native_hih4030_init(NativeHih4030State* state, ChannelBus* bus, uint8_t adc_channel);
void native_hih4030_destroy(NativeHih4030State* state);

// Blocking read of relative humidity in percent (uncompensated).
int native_hih4030_read_rh(NativeHih4030State* state, double* out_rh_pct);
// Temperature-compensated variant (caller supplies ambient temperature).
int native_hih4030_read_rh_compensated(NativeHih4030State* state, double ambient_celsius,
                                       double* out_rh_pct);

double native_hih4030_volts_to_rh(double volts, double supply_volts);

}  // namespace micropnp

#endif  // SRC_BASELINE_NATIVE_HIH4030_H_
