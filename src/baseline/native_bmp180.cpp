#include "src/baseline/native_bmp180.h"

namespace micropnp {

#define BMP180_I2C_ADDR 0x77
#define BMP180_REG_CALIB 0xaa
#define BMP180_REG_CHIP_ID 0xd0
#define BMP180_REG_CTRL_MEAS 0xf4
#define BMP180_REG_OUT_MSB 0xf6
#define BMP180_CHIP_ID 0x55
#define BMP180_CMD_TEMP 0x2e
#define BMP180_CMD_PRES 0x34
#define BMP180_TEMP_WAIT_US 4500

static int bmp180_wait_us(NativeBmp180State* state, uint32_t micros) {
  // A native blocking driver spins on a hardware timer; here the wait
  // advances the simulation clock.
  state->scheduler->RunUntil(state->scheduler->now() + SimTime::FromMicros(micros));
  return BMP180_OK;
}

static uint32_t bmp180_pressure_wait_us(uint8_t oss) {
  switch (oss) {
    case 0:
      return 4500;
    case 1:
      return 7500;
    case 2:
      return 13500;
    default:
      return 25500;
  }
}

static int bmp180_read_regs(NativeBmp180State* state, uint8_t reg, uint8_t* out, size_t count) {
  uint8_t pointer = reg;
  Result<std::vector<uint8_t>> data =
      state->bus->i2c().WriteRead(BMP180_I2C_ADDR, ByteSpan(&pointer, 1), count);
  if (!data.ok()) {
    return BMP180_ERR_BUS;
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = (*data)[i];
  }
  return BMP180_OK;
}

static int bmp180_write_reg(NativeBmp180State* state, uint8_t reg, uint8_t value) {
  uint8_t frame[2];
  frame[0] = reg;
  frame[1] = value;
  Status status = state->bus->i2c().Write(BMP180_I2C_ADDR, ByteSpan(frame, 2));
  return status.ok() ? BMP180_OK : BMP180_ERR_BUS;
}

static int16_t bmp180_s16(const uint8_t* raw) {
  return (int16_t)(((uint16_t)raw[0] << 8) | raw[1]);
}

static uint16_t bmp180_u16(const uint8_t* raw) {
  return (uint16_t)(((uint16_t)raw[0] << 8) | raw[1]);
}

int native_bmp180_init(NativeBmp180State* state, ChannelBus* bus, Scheduler* scheduler,
                       uint8_t oss) {
  if (state == 0 || bus == 0 || scheduler == 0) {
    return BMP180_ERR_NOT_INITIALIZED;
  }
  if (oss > 3) {
    return BMP180_ERR_BAD_OSS;
  }
  if (!bus->IsSelected(BusKind::kI2c)) {
    return BMP180_ERR_BUS;
  }
  state->bus = bus;
  state->scheduler = scheduler;
  state->oss = oss;

  uint8_t chip_id = 0;
  int rc = bmp180_read_regs(state, BMP180_REG_CHIP_ID, &chip_id, 1);
  if (rc != BMP180_OK) {
    return rc;
  }
  if (chip_id != BMP180_CHIP_ID) {
    return BMP180_ERR_BAD_CHIP_ID;
  }

  uint8_t eeprom[22];
  rc = bmp180_read_regs(state, BMP180_REG_CALIB, eeprom, 22);
  if (rc != BMP180_OK) {
    return rc;
  }
  state->calib.ac1 = bmp180_s16(&eeprom[0]);
  state->calib.ac2 = bmp180_s16(&eeprom[2]);
  state->calib.ac3 = bmp180_s16(&eeprom[4]);
  state->calib.ac4 = bmp180_u16(&eeprom[6]);
  state->calib.ac5 = bmp180_u16(&eeprom[8]);
  state->calib.ac6 = bmp180_u16(&eeprom[10]);
  state->calib.b1 = bmp180_s16(&eeprom[12]);
  state->calib.b2 = bmp180_s16(&eeprom[14]);
  state->calib.mb = bmp180_s16(&eeprom[16]);
  state->calib.mc = bmp180_s16(&eeprom[18]);
  state->calib.md = bmp180_s16(&eeprom[20]);
  state->b5 = 0;
  state->initialized = 1;
  return BMP180_OK;
}

void native_bmp180_destroy(NativeBmp180State* state) {
  if (state == 0) {
    return;
  }
  state->initialized = 0;
  state->bus = 0;
  state->scheduler = 0;
}

int32_t native_bmp180_compensate_temperature(const NativeBmp180Calib* calib, int32_t ut,
                                             int32_t* out_b5) {
  int32_t x1 = ((ut - (int32_t)calib->ac6) * (int32_t)calib->ac5) >> 15;
  int32_t x2 = ((int32_t)calib->mc << 11) / (x1 + (int32_t)calib->md);
  int32_t b5 = x1 + x2;
  if (out_b5 != 0) {
    *out_b5 = b5;
  }
  return (b5 + 8) >> 4;
}

int32_t native_bmp180_compensate_pressure(const NativeBmp180Calib* calib, int32_t up, int32_t b5,
                                          uint8_t oss) {
  int32_t b6 = b5 - 4000;
  int32_t x1 = ((int32_t)calib->b2 * ((b6 * b6) >> 12)) >> 11;
  int32_t x2 = ((int32_t)calib->ac2 * b6) >> 11;
  int32_t x3 = x1 + x2;
  int32_t b3 = (((((int32_t)calib->ac1) * 4 + x3) << oss) + 2) / 4;
  x1 = ((int32_t)calib->ac3 * b6) >> 13;
  x2 = ((int32_t)calib->b1 * ((b6 * b6) >> 12)) >> 16;
  x3 = ((x1 + x2) + 2) >> 2;
  uint32_t b4 = ((uint32_t)calib->ac4 * (uint32_t)(x3 + 32768)) >> 15;
  uint32_t b7 = ((uint32_t)up - (uint32_t)b3) * (uint32_t)(50000 >> oss);
  int32_t p;
  if (b7 < 0x80000000u) {
    p = (int32_t)((b7 * 2) / b4);
  } else {
    p = (int32_t)((b7 / b4) * 2);
  }
  x1 = (p >> 8) * (p >> 8);
  x1 = (x1 * 3038) >> 16;
  x2 = (-7357 * p) >> 16;
  p = p + ((x1 + x2 + 3791) >> 4);
  return p;
}

int native_bmp180_read_temperature(NativeBmp180State* state, int32_t* out_deci_celsius) {
  if (state == 0 || state->initialized == 0) {
    return BMP180_ERR_NOT_INITIALIZED;
  }
  int rc = bmp180_write_reg(state, BMP180_REG_CTRL_MEAS, BMP180_CMD_TEMP);
  if (rc != BMP180_OK) {
    return rc;
  }
  bmp180_wait_us(state, BMP180_TEMP_WAIT_US);
  uint8_t raw[2];
  rc = bmp180_read_regs(state, BMP180_REG_OUT_MSB, raw, 2);
  if (rc != BMP180_OK) {
    return rc;
  }
  int32_t ut = ((int32_t)raw[0] << 8) | raw[1];
  int32_t t = native_bmp180_compensate_temperature(&state->calib, ut, &state->b5);
  if (out_deci_celsius != 0) {
    *out_deci_celsius = t;
  }
  return BMP180_OK;
}

int native_bmp180_read_pressure(NativeBmp180State* state, int32_t* out_pascal) {
  if (state == 0 || state->initialized == 0) {
    return BMP180_ERR_NOT_INITIALIZED;
  }
  // A pressure measurement requires a fresh B5 from a temperature reading.
  int32_t ignored;
  int rc = native_bmp180_read_temperature(state, &ignored);
  if (rc != BMP180_OK) {
    return rc;
  }
  rc = bmp180_write_reg(state, BMP180_REG_CTRL_MEAS,
                        (uint8_t)(BMP180_CMD_PRES | (state->oss << 6)));
  if (rc != BMP180_OK) {
    return rc;
  }
  bmp180_wait_us(state, bmp180_pressure_wait_us(state->oss));
  uint8_t raw[3];
  rc = bmp180_read_regs(state, BMP180_REG_OUT_MSB, raw, 3);
  if (rc != BMP180_OK) {
    return rc;
  }
  int32_t up = (int32_t)((((uint32_t)raw[0] << 16) | ((uint32_t)raw[1] << 8) | raw[2]) >>
                         (8 - state->oss));
  int32_t p = native_bmp180_compensate_pressure(&state->calib, up, state->b5, state->oss);
  if (out_pascal != 0) {
    *out_pascal = p;
  }
  return BMP180_OK;
}

}  // namespace micropnp
