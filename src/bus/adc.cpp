#include "src/bus/adc.h"

#include <cmath>

namespace micropnp {

Result<uint16_t> AdcPort::Sample() {
  if (source_ == nullptr) {
    return Unavailable("no analog source attached");
  }
  const Volts v = source_->VoltageAt(scheduler_.now());
  const double full_scale = static_cast<double>((1u << config_.resolution_bits) - 1);
  double normalized = v.value() / config_.vref.value();
  if (normalized < 0.0) {
    normalized = 0.0;
  }
  if (normalized > 1.0) {
    normalized = 1.0;
  }
  ++conversions_;
  return static_cast<uint16_t>(std::lround(normalized * full_scale));
}

Volts AdcPort::CodeToVoltage(uint16_t code) const {
  const double full_scale = static_cast<double>((1u << config_.resolution_bits) - 1);
  return Volts(config_.vref.value() * static_cast<double>(code) / full_scale);
}

}  // namespace micropnp
