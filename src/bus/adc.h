// ADC interconnect model.
//
// Analog peripherals (TMP36, HIH-4030) expose a voltage that the host MCU
// samples through its analog-to-digital converter.  The model mirrors what a
// μPnP driver author would otherwise need to know from the datasheet
// (Section 2.2): resolution, reference voltage and conversion time.

#ifndef SRC_BUS_ADC_H_
#define SRC_BUS_ADC_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// Something producing an analog voltage over time (a sensor output pin).
class AnalogSource {
 public:
  virtual ~AnalogSource() = default;
  virtual Volts VoltageAt(SimTime now) = 0;
};

struct AdcConfig {
  int resolution_bits = 10;  // ATMega128RFA1: 10-bit successive approximation
  Volts vref = Volts(3.3);
  // 13 ADC clock cycles at 125 kHz.
  SimDuration conversion_time = SimTime::FromMicros(104);
};

// One ADC input channel.  Sampling quantizes the attached source's voltage
// against vref at the configured resolution.
class AdcPort {
 public:
  explicit AdcPort(Scheduler& scheduler) : scheduler_(scheduler) {}

  void Configure(const AdcConfig& config) { config_ = config; }
  const AdcConfig& config() const { return config_; }

  void AttachSource(AnalogSource* source) { source_ = source; }
  void DetachSource() { source_ = nullptr; }
  bool attached() const { return source_ != nullptr; }

  // Performs one conversion at the current simulation time.  Returns the raw
  // code in [0, 2^bits - 1]; clips out-of-range voltages.
  Result<uint16_t> Sample();

  // Converts a raw code back to the voltage the code represents.
  Volts CodeToVoltage(uint16_t code) const;

  SimDuration conversion_time() const { return config_.conversion_time; }
  uint64_t conversions() const { return conversions_; }

 private:
  Scheduler& scheduler_;
  AdcConfig config_;
  AnalogSource* source_ = nullptr;
  uint64_t conversions_ = 0;
};

}  // namespace micropnp

#endif  // SRC_BUS_ADC_H_
