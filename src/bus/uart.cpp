#include "src/bus/uart.h"

namespace micropnp {

bool UartConfig::Valid() const {
  if (baud == 0 || baud > 2'000'000) {
    return false;
  }
  if (data_bits < 5 || data_bits > 8) {
    return false;
  }
  return true;
}

double UartConfig::ByteTimeSeconds() const {
  const double parity_bits = (parity == UartParity::kNone) ? 0.0 : 1.0;
  const double bits =
      1.0 + static_cast<double>(data_bits) + parity_bits + static_cast<double>(stop_bits);
  return bits / static_cast<double>(baud);
}

Status UartPort::Init(const UartConfig& config) {
  if (initialized_) {
    return BusyError("uart in use");
  }
  if (!config.Valid()) {
    return InvalidArgument("unsupported uart configuration");
  }
  config_ = config;
  initialized_ = true;
  return OkStatus();
}

void UartPort::Reset() {
  initialized_ = false;
  rx_handler_ = nullptr;
  rx_fifo_.clear();
  config_ = UartConfig{};
}

Status UartPort::HostSend(uint8_t byte) {
  if (!initialized_) {
    return FailedPrecondition("uart not initialized");
  }
  const SimDuration wire = SimTime::FromSeconds(config_.ByteTimeSeconds());
  SimTime start = scheduler_.now();
  if (host_tx_free_at_ > start) {
    start = host_tx_free_at_;
  }
  host_tx_free_at_ = start + wire;
  UartEndpoint* device = device_;
  scheduler_.ScheduleAt(host_tx_free_at_, [this, device, byte] {
    if (device != nullptr && device == device_) {
      device->OnHostByte(byte, scheduler_.now());
    }
  });
  return OkStatus();
}

void UartPort::DeviceSend(uint8_t byte) {
  const SimDuration wire = SimTime::FromSeconds(config_.ByteTimeSeconds());
  SimTime start = scheduler_.now();
  if (device_tx_free_at_ > start) {
    start = device_tx_free_at_;
  }
  device_tx_free_at_ = start + wire;
  scheduler_.ScheduleAt(device_tx_free_at_, [this, byte] { DeliverToHost(byte); });
}

void UartPort::DeviceSendFrame(ByteSpan bytes) {
  for (uint8_t b : bytes) {
    DeviceSend(b);
  }
}

void UartPort::DeliverToHost(uint8_t byte) {
  if (!initialized_) {
    return;  // nobody listening; byte lost on the floor
  }
  if (rx_handler_) {
    rx_handler_(byte);
    return;
  }
  if (rx_fifo_.size() >= kRxFifoDepth) {
    ++overruns_;
    return;
  }
  rx_fifo_.push_back(byte);
}

Result<uint8_t> UartPort::ReadByte() {
  if (rx_fifo_.empty()) {
    return Unavailable("rx fifo empty");
  }
  uint8_t b = rx_fifo_.front();
  rx_fifo_.pop_front();
  return b;
}

}  // namespace micropnp
