#include "src/bus/spi.h"

namespace micropnp {

Result<std::vector<uint8_t>> SpiPort::Transfer(ByteSpan tx) {
  if (device_ == nullptr) {
    return Unavailable("no spi device attached");
  }
  ++transfers_;
  const SimTime now = scheduler_.now();
  device_->OnSelect(now);
  std::vector<uint8_t> rx;
  rx.reserve(tx.size());
  for (uint8_t b : tx) {
    rx.push_back(device_->Exchange(b, now));
  }
  device_->OnDeselect(now);
  return rx;
}

}  // namespace micropnp
