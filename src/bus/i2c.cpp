#include "src/bus/i2c.h"

#include <algorithm>

namespace micropnp {

Status I2cPort::Attach(I2cDevice* device) {
  if (device == nullptr) {
    return InvalidArgument("null device");
  }
  if (FindDevice(device->address()) != nullptr) {
    return AlreadyExists("i2c address collision");
  }
  devices_.push_back(device);
  return OkStatus();
}

Status I2cPort::Detach(I2cDevice* device) {
  auto it = std::find(devices_.begin(), devices_.end(), device);
  if (it == devices_.end()) {
    return NotFound("device not attached");
  }
  devices_.erase(it);
  return OkStatus();
}

I2cDevice* I2cPort::FindDevice(uint8_t address) {
  for (I2cDevice* d : devices_) {
    if (d->address() == address) {
      return d;
    }
  }
  return nullptr;
}

Status I2cPort::Write(uint8_t address, ByteSpan data) {
  I2cDevice* device = FindDevice(address);
  ++transactions_;
  if (device == nullptr) {
    return Unavailable("address NACK");
  }
  return device->OnWrite(data, scheduler_.now());
}

Result<std::vector<uint8_t>> I2cPort::Read(uint8_t address, size_t count) {
  I2cDevice* device = FindDevice(address);
  ++transactions_;
  if (device == nullptr) {
    return Unavailable("address NACK");
  }
  return device->OnRead(count, scheduler_.now());
}

Result<std::vector<uint8_t>> I2cPort::WriteRead(uint8_t address, ByteSpan write_data,
                                                size_t read_count) {
  I2cDevice* device = FindDevice(address);
  ++transactions_;
  if (device == nullptr) {
    return Unavailable("address NACK");
  }
  Status write_status = device->OnWrite(write_data, scheduler_.now());
  if (!write_status.ok()) {
    return write_status;
  }
  return device->OnRead(read_count, scheduler_.now());
}

SimDuration I2cPort::TransactionTime(size_t bytes, int starts) const {
  // Each byte is 9 clock cycles (8 data + ACK); each start adds an address
  // byte plus start/stop overhead (~2 cycles).
  const double cycles =
      9.0 * (static_cast<double>(bytes) + starts) + 2.0 * static_cast<double>(starts);
  return SimTime::FromSeconds(cycles / static_cast<double>(config_.clock_hz));
}

}  // namespace micropnp
