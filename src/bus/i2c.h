// I2C interconnect model.
//
// A two-wire addressed bus: multiple devices share SDA/SCL, each with a 7-bit
// address.  Transactions are master-initiated writes, reads, or combined
// write-then-read (repeated start) — the shape the BMP180 driver needs for
// register access.  Transaction durations follow the configured clock rate
// (9 bits per byte on the wire: 8 data + ACK).

#ifndef SRC_BUS_I2C_H_
#define SRC_BUS_I2C_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// Device-side interface: a slave reacts to master writes and serves reads.
class I2cDevice {
 public:
  virtual ~I2cDevice() = default;
  virtual uint8_t address() const = 0;
  // Master wrote `data` to this device.  Returning non-OK models a NACK.
  virtual Status OnWrite(ByteSpan data, SimTime now) = 0;
  // Master reads `count` bytes.
  virtual Result<std::vector<uint8_t>> OnRead(size_t count, SimTime now) = 0;
};

struct I2cConfig {
  uint32_t clock_hz = 100'000;  // standard mode
};

class I2cPort {
 public:
  explicit I2cPort(Scheduler& scheduler) : scheduler_(scheduler) {}

  void Configure(const I2cConfig& config) { config_ = config; }
  const I2cConfig& config() const { return config_; }

  // Attaches a slave.  Fails on address collision (two devices would fight
  // over the bus).
  Status Attach(I2cDevice* device);
  Status Detach(I2cDevice* device);
  size_t device_count() const { return devices_.size(); }

  // Master transactions.  Addressing an absent device reports kUnavailable —
  // the electrical reality of an unacknowledged address byte.
  Status Write(uint8_t address, ByteSpan data);
  Result<std::vector<uint8_t>> Read(uint8_t address, size_t count);
  Result<std::vector<uint8_t>> WriteRead(uint8_t address, ByteSpan write_data, size_t read_count);

  // Wire time for a transaction moving `bytes` payload bytes (+1 address
  // byte per start condition, 9 bits per byte).
  SimDuration TransactionTime(size_t bytes, int starts = 1) const;

  uint64_t transactions() const { return transactions_; }

 private:
  I2cDevice* FindDevice(uint8_t address);

  Scheduler& scheduler_;
  I2cConfig config_;
  std::vector<I2cDevice*> devices_;
  uint64_t transactions_ = 0;
};

}  // namespace micropnp

#endif  // SRC_BUS_I2C_H_
