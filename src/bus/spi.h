// SPI interconnect model.
//
// Full-duplex synchronous serial with chip-select.  μPnP's connector carries
// MOSI/MISO/SCK (Table 1); one device per channel, selected by the mux.

#ifndef SRC_BUS_SPI_H_
#define SRC_BUS_SPI_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace micropnp {

// Device-side: exchanges one byte per clock burst (full duplex).
class SpiDevice {
 public:
  virtual ~SpiDevice() = default;
  virtual uint8_t Exchange(uint8_t mosi_byte, SimTime now) = 0;
  // Chip-select edges let stateful devices reset their transaction state.
  virtual void OnSelect(SimTime /*now*/) {}
  virtual void OnDeselect(SimTime /*now*/) {}
};

struct SpiConfig {
  uint32_t clock_hz = 1'000'000;
  uint8_t mode = 0;  // CPOL/CPHA, 0..3
};

class SpiPort {
 public:
  explicit SpiPort(Scheduler& scheduler) : scheduler_(scheduler) {}

  void Configure(const SpiConfig& config) { config_ = config; }
  const SpiConfig& config() const { return config_; }

  void AttachDevice(SpiDevice* device) { device_ = device; }
  void DetachDevice() { device_ = nullptr; }
  bool attached() const { return device_ != nullptr; }

  // Asserts CS, exchanges `tx`, deasserts CS.  Returns the MISO bytes.
  Result<std::vector<uint8_t>> Transfer(ByteSpan tx);

  // Wire time for `bytes` at the configured clock.
  SimDuration TransferTime(size_t bytes) const {
    return SimTime::FromSeconds(8.0 * static_cast<double>(bytes) /
                                static_cast<double>(config_.clock_hz));
  }

  uint64_t transfers() const { return transfers_; }

 private:
  Scheduler& scheduler_;
  SpiConfig config_;
  SpiDevice* device_ = nullptr;
  uint64_t transfers_ = 0;
};

}  // namespace micropnp

#endif  // SRC_BUS_SPI_H_
