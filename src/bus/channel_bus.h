// Per-channel bus multiplexer.
//
// After identification, the control board switches the connector's
// communication pins onto the bus the peripheral speaks (Section 3.1).  A
// ChannelBus owns one port of each kind for a physical channel; `Select`
// models the mux: exactly one port kind is live at a time, and the runtime's
// native libraries refuse to touch a deselected port.

#ifndef SRC_BUS_CHANNEL_BUS_H_
#define SRC_BUS_CHANNEL_BUS_H_

#include <optional>

#include "src/bus/adc.h"
#include "src/bus/i2c.h"
#include "src/bus/spi.h"
#include "src/bus/uart.h"
#include "src/common/bus_kind.h"

namespace micropnp {

class ChannelBus {
 public:
  explicit ChannelBus(Scheduler& scheduler)
      : adc_(scheduler), i2c_(scheduler), spi_(scheduler), uart_(scheduler) {}

  // Switches the mux.  Deselecting (nullopt) disconnects all ports.
  void Select(std::optional<BusKind> kind) { selected_ = kind; }
  std::optional<BusKind> selected() const { return selected_; }
  bool IsSelected(BusKind kind) const { return selected_ == kind; }

  AdcPort& adc() { return adc_; }
  I2cPort& i2c() { return i2c_; }
  SpiPort& spi() { return spi_; }
  UartPort& uart() { return uart_; }

  const AdcPort& adc() const { return adc_; }
  const I2cPort& i2c() const { return i2c_; }
  const SpiPort& spi() const { return spi_; }
  const UartPort& uart() const { return uart_; }

 private:
  std::optional<BusKind> selected_;
  AdcPort adc_;
  I2cPort i2c_;
  SpiPort spi_;
  UartPort uart_;
};

}  // namespace micropnp

#endif  // SRC_BUS_CHANNEL_BUS_H_
