// UART interconnect model.
//
// Point-to-point asynchronous serial, the interconnect of the ID-20LA RFID
// reader.  Bytes sent by the device arrive at the host after the wire time
// implied by the frame format (start + data + parity + stop bits at the
// configured baud rate), delivered through the scheduler so drivers see the
// same split-phase, interrupt-per-byte behaviour the paper's DSL models with
// `newdata` events (Listing 1).
//
// The port enforces exclusive host-side ownership: a second driver calling
// Init() while the port is claimed gets kBusy, mirroring the `uartInUse`
// error event of Listing 1.

#ifndef SRC_BUS_UART_H_
#define SRC_BUS_UART_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace micropnp {

enum class UartParity : uint8_t { kNone = 0, kEven = 1, kOdd = 2 };
enum class UartStopBits : uint8_t { kOne = 1, kTwo = 2 };

struct UartConfig {
  uint32_t baud = 9600;
  UartParity parity = UartParity::kNone;
  UartStopBits stop_bits = UartStopBits::kOne;
  uint8_t data_bits = 8;

  bool Valid() const;
  // Seconds on the wire for one framed byte.
  double ByteTimeSeconds() const;
};

// Device-side endpoint (the peripheral's TX/RX).
class UartEndpoint {
 public:
  virtual ~UartEndpoint() = default;
  // Host wrote a byte towards the device.
  virtual void OnHostByte(uint8_t byte, SimTime now) = 0;
};

class UartPort {
 public:
  explicit UartPort(Scheduler& scheduler) : scheduler_(scheduler) {}

  // --- host (driver) side -------------------------------------------------
  // Claims and configures the port.  kBusy if already claimed, kInvalidArgument
  // for unsupported configurations (e.g. 0 baud, 9 data bits).
  Status Init(const UartConfig& config);
  // Releases the port and restores platform defaults.
  void Reset();
  bool initialized() const { return initialized_; }
  const UartConfig& config() const { return config_; }

  // Byte-received callback (the `newdata` interrupt).  Fires once per byte
  // at its wire-arrival time.
  using RxHandler = std::function<void(uint8_t)>;
  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  // Host transmits towards the device; delivery is scheduled after the wire
  // time of the queued bytes.
  Status HostSend(uint8_t byte);

  // --- device (peripheral) side -------------------------------------------
  void AttachDevice(UartEndpoint* device) { device_ = device; }
  void DetachDevice() { device_ = nullptr; }

  // Device transmits towards the host.  Bytes arrive back-to-back at wire
  // speed; if the host has no handler installed they queue in the RX FIFO
  // (capacity-limited, like a real UART's hardware buffer — overflow drops
  // the newest byte and counts an overrun).
  void DeviceSend(uint8_t byte);
  void DeviceSendFrame(ByteSpan bytes);

  // Drains one byte from the RX FIFO (polling-style access used by tests).
  Result<uint8_t> ReadByte();
  size_t rx_available() const { return rx_fifo_.size(); }
  uint64_t overruns() const { return overruns_; }

  static constexpr size_t kRxFifoDepth = 64;

 private:
  void DeliverToHost(uint8_t byte);

  Scheduler& scheduler_;
  UartConfig config_;
  bool initialized_ = false;
  RxHandler rx_handler_;
  UartEndpoint* device_ = nullptr;
  std::deque<uint8_t> rx_fifo_;
  uint64_t overruns_ = 0;
  // Wire becomes free at this time; queued sends serialize after it.
  SimTime device_tx_free_at_;
  SimTime host_tx_free_at_;
};

}  // namespace micropnp

#endif  // SRC_BUS_UART_H_
