// updl_lint: compile μPnP DSL drivers and run the full deploy-time analysis
// pipeline over them — structural verification (src/rt/decoded_image.cpp)
// plus abstract interpretation (src/rt/abstract_interp.h) — reporting every
// finding with its severity, bytecode pc and source line.
//
// Usage:  updl_lint [--check] [--quiet] driver.updl...
//
//   --check   exit 1 when any driver has error-severity findings (or fails
//             to compile/verify); the CI gate over drivers/*.updl
//   --quiet   suppress per-handler WCET and proof-census summaries
//
// Exit codes: 0 = success, 1 = a file could not be read/compiled/verified or
// (with --check) error-severity findings were reported, 2 = bad command line.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/dsl/compiler.h"
#include "src/rt/abstract_interp.h"
#include "src/rt/decoded_image.h"
#include "src/rt/vm.h"

namespace micropnp {
namespace {

struct Options {
  bool check = false;
  bool quiet = false;
  std::vector<std::string> files;
};

enum class LintResult {
  kClean,    // deployable, possibly with warnings/notes
  kFindings, // analysis produced error-severity findings
  kFatal,    // file unreadable, compile error, or structural verify failure
};

LintResult LintFile(const std::string& path, const Options& opts) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: error: cannot open file\n", path.c_str());
    return LintResult::kFatal;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Result<CompiledDriver> compiled = CompileDriverWithDebugInfo(buffer.str());
  if (!compiled.ok()) {
    // Compiler errors already carry "line N:" prefixes.
    std::fprintf(stderr, "%s: error: %s\n", path.c_str(),
                 compiled.status().message().c_str());
    return LintResult::kFatal;
  }

  // reject_unsafe off: report every finding instead of stopping at the
  // Status for the first error, exactly like a compiler's error list.
  Result<DecodedImage> decoded = DecodedImage::Decode(
      compiled->image, std::nullopt, DecodeOptions{.reject_unsafe = false});
  if (!decoded.ok()) {
    // Structural verification failure (no analysis to report from).
    std::fprintf(stderr, "%s: error: %s\n", path.c_str(),
                 decoded.status().message().c_str());
    return LintResult::kFatal;
  }

  const ImageAnalysis& analysis = decoded->analysis();
  for (const Finding& f : analysis.findings) {
    const int line = compiled->debug.LineFor(f.pc);
    std::printf("%s:%d: %s: %s: %s [pc %u]\n", path.c_str(), line,
                FindingSeverityName(f.severity), FindingKindName(f.kind),
                f.message.c_str(), f.pc);
  }

  if (!opts.quiet) {
    for (const HandlerWcet& wcet : analysis.wcet) {
      const DecodedHandler* handler = decoded->FindHandler(wcet.event);
      const uint32_t max_stack = handler != nullptr ? handler->max_stack : 0;
      if (wcet.bounded) {
        std::printf("%s: handler 0x%02x: wcet %llu instr / %llu cycles%s, stack %u\n",
                    path.c_str(), wcet.event,
                    static_cast<unsigned long long>(wcet.instructions),
                    static_cast<unsigned long long>(wcet.cycles),
                    wcet.under_watchdog ? " (watchdog elided)" : "", max_stack);
      } else {
        std::printf("%s: handler 0x%02x: wcet unbounded (loop), watchdog kept, stack %u\n",
                    path.c_str(), wcet.event, max_stack);
      }
    }
    std::printf("%s: trap sites: %zu/%zu divisions proven, %zu/%zu subscripts proven\n",
                path.c_str(), analysis.proven_div_sites,
                analysis.proven_div_sites + analysis.guarded_div_sites,
                analysis.proven_subscript_sites,
                analysis.proven_subscript_sites + analysis.guarded_subscript_sites);
  }

  return analysis.has_errors() ? LintResult::kFindings : LintResult::kClean;
}

}  // namespace
}  // namespace micropnp

int main(int argc, char** argv) {
  micropnp::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opts.quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: updl_lint [--check] [--quiet] driver.updl...\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "updl_lint: unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      opts.files.push_back(argv[i]);
    }
  }
  if (opts.files.empty()) {
    std::fprintf(stderr, "usage: updl_lint [--check] [--quiet] driver.updl...\n");
    return 2;
  }

  bool fatal = false;
  bool findings = false;
  for (const std::string& file : opts.files) {
    switch (micropnp::LintFile(file, opts)) {
      case micropnp::LintResult::kClean:
        break;
      case micropnp::LintResult::kFindings:
        findings = true;
        break;
      case micropnp::LintResult::kFatal:
        fatal = true;
        break;
    }
  }
  // Without --check, findings are informational; a file that failed to open,
  // compile, or verify is always an error.
  if (fatal) return 1;
  return (opts.check && findings) ? 1 : 0;
}
