// Access control: RFID door entry — the paper's UART peripheral (ID-20LA,
// Listing 1) working end to end.
//
// A door node carries an RFID reader and a lock relay.  A controller client
// re-arms reads, validates badge checksums against an allow-list, and pulses
// the lock for authorized cards.

#include <cstdio>
#include <set>
#include <string>

#include "src/core/deployment.h"

using namespace micropnp;

namespace {

// Re-arms the reader and handles one card per pass.
void ArmReader(Deployment& deployment, MicroPnpClient& controller, MicroPnpThing& door,
               MicroPnpThing& lock, const std::set<std::string>& allowed, int* granted,
               int* denied) {
  controller.Read(
      door.node().address(), kId20LaTypeId,
      [&, granted, denied](Result<WireValue> value) {
        if (!value.ok() || !value->is_array) {
          return;  // timed out: nobody badged in this window
        }
        const std::string payload(value->bytes.begin(), value->bytes.end());
        const bool checksum_ok = ValidateId20LaPayload(payload);
        const bool authorized = checksum_ok && allowed.count(payload.substr(0, 10)) != 0;
        std::printf("[%7.0f ms] badge %s  checksum=%s  -> %s\n", deployment.NowMillis(),
                    payload.c_str(), checksum_ok ? "ok" : "BAD",
                    authorized ? "ACCESS GRANTED" : "access denied");
        if (authorized) {
          ++*granted;
          // Pulse the lock: open for 2 s.
          controller.Write(lock.node().address(), kRelayTypeId, 1, [](Status) {});
          deployment.scheduler().ScheduleAfter(SimTime::FromMillis(2000), [&, granted] {
            controller.Write(lock.node().address(), kRelayTypeId, 0, [](Status) {});
          });
        } else {
          ++*denied;
        }
        ArmReader(deployment, controller, door, lock, allowed, granted, denied);
      },
      /*timeout_ms=*/60'000);
}

}  // namespace

int main() {
  std::printf("=== access control: ID-20LA badge reader + lock relay ===\n\n");

  Deployment deployment;
  deployment.AddManager();
  MicroPnpThing& door = deployment.AddThing("door-node");
  MicroPnpThing& lock = deployment.AddThing("lock-node");
  MicroPnpClient& controller = deployment.AddClient("access-controller");

  Id20La& reader = deployment.MakeId20La();
  Relay& lock_relay = deployment.MakeRelay();
  (void)door.Plug(0, &reader);
  (void)lock.Plug(0, &lock_relay);
  deployment.RunForMillis(2000);

  // Badge database: two authorized cards.
  const RfidCard alice = {0x4a, 0x00, 0xd2, 0x3f, 0x81};
  const RfidCard bob = {0x4a, 0x00, 0xee, 0x12, 0x34};
  const RfidCard mallory = {0xba, 0xdb, 0xad, 0xba, 0xdd};
  std::set<std::string> allowed = {Id20LaPayload(alice).substr(0, 10),
                                   Id20LaPayload(bob).substr(0, 10)};
  std::printf("allow-list: %s, %s\n\n", Id20LaPayload(alice).substr(0, 10).c_str(),
              Id20LaPayload(bob).substr(0, 10).c_str());

  int granted = 0, denied = 0;
  ArmReader(deployment, controller, door, lock, allowed, &granted, &denied);
  deployment.RunForMillis(500);

  // People badge in over the next minute.
  struct Swipe {
    double at_ms;
    const RfidCard* card;
    const char* who;
  };
  const Swipe swipes[] = {
      {1'000, &alice, "alice"}, {12'000, &mallory, "mallory"}, {25'000, &bob, "bob"},
      {40'000, &alice, "alice"},
  };
  const double start_ms = deployment.NowMillis();
  for (const Swipe& swipe : swipes) {
    const double target = start_ms + swipe.at_ms;
    if (target > deployment.NowMillis()) {
      deployment.RunForMillis(target - deployment.NowMillis());
    }
    std::printf("[%7.0f ms] %s presents a card\n", deployment.NowMillis(), swipe.who);
    reader.PresentCard(*swipe.card);
    deployment.RunForMillis(1'500);
  }
  deployment.RunForMillis(5'000);

  std::printf("\nsummary: %d granted, %d denied; lock switched %llu times\n", granted, denied,
              static_cast<unsigned long long>(lock_relay.switch_count()));
  return granted == 3 && denied == 1 ? 0 : 1;
}
