// Smart building: the IoT scenario the paper's introduction motivates —
// multiple Things across rooms, streaming environmental telemetry, and an
// actuator controlled from sensor data.
//
// Three Things (two sensor nodes, one actuator node) attach to a border
// router; a monitoring client subscribes to temperature and humidity
// streams and switches a ventilation relay when the humidity crosses a
// threshold.

#include <cstdio>

#include "src/core/deployment.h"

using namespace micropnp;

int main() {
  std::printf("=== smart building: streaming telemetry + closed-loop actuation ===\n\n");

  Deployment deployment;
  deployment.AddManager();
  MicroPnpThing& office = deployment.AddThing("office-node");
  MicroPnpThing& server_room = deployment.AddThing("server-room-node");
  MicroPnpThing& hvac = deployment.AddThing("hvac-node");
  MicroPnpClient& monitor = deployment.AddClient("building-monitor");

  // Provision the peripherals (plug-and-play: drivers arrive over the air).
  (void)office.Plug(0, &deployment.MakeTmp36());
  (void)office.Plug(1, &deployment.MakeHih4030());
  (void)server_room.Plug(0, &deployment.MakeTmp36());
  Relay& vent_relay = deployment.MakeRelay();
  (void)hvac.Plug(0, &vent_relay);
  deployment.RunForMillis(2000);
  std::printf("provisioned: office(TMP36+HIH-4030), server-room(TMP36), hvac(Relay)\n\n");

  vent_relay.set_observer([&](bool closed) {
    std::printf("[%8.0f ms] hvac: ventilation relay %s\n", deployment.NowMillis(),
                closed ? "CLOSED (fan on)" : "OPEN (fan off)");
  });

  // Stream humidity once per 10 s (the paper's Figure 12 workload cadence);
  // drive the ventilation fan from a 60 %RH threshold with hysteresis.
  bool fan_on = false;
  int samples = 0;
  monitor.StartStream(office.node().address(), kHih4030TypeId, /*period_ms=*/10'000,
                      [&](const WireValue& v) {
                        const double rh = v.scalar / 10.0;
                        ++samples;
                        if (samples % 6 == 1) {
                          std::printf("[%8.0f ms] monitor: office humidity %.1f %%RH\n",
                                      deployment.NowMillis(), rh);
                        }
                        const bool want_fan = fan_on ? (rh > 55.0) : (rh > 60.0);
                        if (want_fan != fan_on) {
                          fan_on = want_fan;
                          monitor.Write(hvac.node().address(), kRelayTypeId, fan_on ? 1 : 0,
                                        [](Status) {});
                        }
                      });

  // Also stream the server-room temperature at a faster cadence.
  double max_temp = -1e9;
  monitor.StartStream(server_room.node().address(), kTmp36TypeId, /*period_ms=*/5'000,
                      [&](const WireValue& v) {
                        const double celsius = v.scalar / 10.0;
                        if (celsius > max_temp) {
                          max_temp = celsius;
                        }
                      });

  // Let the building run for four simulated hours (humidity falls through
  // the afternoon as temperature rises, exercising the hysteresis).
  const double kHours = 4.0;
  for (int slice = 0; slice < 8; ++slice) {
    deployment.RunForMillis(kHours * 3600.0 * 1000.0 / 8.0);
  }

  std::printf("\nafter %.0f simulated hours:\n", kHours);
  std::printf("  humidity samples delivered: %d (expect ~%d at 10 s cadence)\n", samples,
              static_cast<int>(kHours * 360));
  std::printf("  server room peak temperature: %.1f degC\n", max_temp);
  std::printf("  relay switch count: %llu\n",
              static_cast<unsigned long long>(vent_relay.switch_count()));

  monitor.StopStream(office.node().address(), kHih4030TypeId);
  monitor.StopStream(server_room.node().address(), kTmp36TypeId);
  deployment.RunForMillis(2000);
  std::printf("streams closed.\n");
  return 0;
}
