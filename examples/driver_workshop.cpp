// Driver workshop: the third-party developer experience (Sections 3.3, 4).
//
// Walks the full lifecycle of a new peripheral type:
//   1. request a provisional address in the global address space — the
//      "online tool" emits the resistor set for the peripheral board;
//   2. write a driver in the μPnP DSL and compile it (bytecode + disasm);
//   3. upload it, promoting the address to permanent;
//   4. register it with a Manager and watch a Thing install it over the air.
//
// The new peripheral here is a soil-moisture sensor (an ADC device), showing
// that the system is not hardwired to the paper's four prototypes.

#include <cstdio>

#include "src/core/address_space.h"
#include "src/core/deployment.h"
#include "src/dsl/bytecode.h"
#include "src/dsl/compiler.h"

using namespace micropnp;

namespace {

// A third-party peripheral: capacitive soil-moisture probe on the ADC bus.
// Voltage falls as moisture rises: V = 2.8 V (dry) .. 1.1 V (saturated).
class SoilMoistureSensor : public Peripheral, public AnalogSource {
 public:
  SoilMoistureSensor(DeviceTypeId id, double moisture_pct)
      : id_(id), moisture_pct_(moisture_pct) {}

  DeviceTypeId type_id() const override { return id_; }
  BusKind bus() const override { return BusKind::kAdc; }
  std::string name() const override { return "SoilProbe"; }
  void AttachTo(ChannelBus& bus) override { bus.adc().AttachSource(this); }
  void DetachFrom(ChannelBus& bus) override { bus.adc().DetachSource(); }
  Volts VoltageAt(SimTime) override {
    return Volts(2.8 - (2.8 - 1.1) * moisture_pct_ / 100.0);
  }

  void set_moisture(double pct) { moisture_pct_ = pct; }

 private:
  DeviceTypeId id_;
  double moisture_pct_;
};

}  // namespace

int main() {
  std::printf("=== driver workshop: bringing up a brand-new peripheral type ===\n\n");

  // -- 1. address space ------------------------------------------------------
  AddressSpace registry;
  Result<AddressRecord> record = registry.RequestProvisionalAddress(
      "SoilProbe-C1", "Workshop Gardens", "dev@workshop.example", "https://workshop.example/c1");
  if (!record.ok()) {
    return 1;
  }
  std::printf("provisional address: %s\n", FormatDeviceTypeId(record->id).c_str());
  std::printf("resistor set from the online tool (Figure 4's R1..R4):\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("  R%d = %8.0f Ohm\n", i + 1, record->resistors[i].value());
  }

  // -- 2. write + compile the driver ----------------------------------------
  char source[1024];
  std::snprintf(source, sizeof(source), R"(# SoilProbe-C1 soil moisture sensor.
device 0x%08x;
import adc;

event init():
    signal adc.init(ADC_REF_VDD, ADC_RES_10BIT);

event destroy():
    signal adc.reset();

event read():
    signal adc.read();

event newdata(int32_t code):
    # V = 2.8 - 1.7 * m;  m(0.1%%) = (2800 - mV) * 1000 / 1700
    return ((2800 - (code * 3300) / 1023) * 1000) / 1700;

error adcInUse():
    signal this.destroy();
)",
                record->id);

  Result<DriverImage> image = CompileDriver(source);
  if (!image.ok()) {
    std::printf("compile error: %s\n", image.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncompiled: %zu bytes of bytecode, %zu bytes over the air\n", image->CodeSize(),
              image->SerializedSize());
  std::printf("\ndisassembly of the newdata handler region:\n%s\n",
              Disassemble(ByteSpan(image->code.data(), image->code.size())).c_str());

  // -- 3. upload: provisional -> permanent -----------------------------------
  if (!registry.UploadDriver(record->id, *image).ok()) {
    return 1;
  }
  std::printf("driver validated and uploaded: address is now %s\n",
              registry.Lookup(record->id)->permanent ? "PERMANENT" : "provisional");

  // -- 4. deploy: Manager repository -> over-the-air install -----------------
  Deployment deployment;
  MicroPnpManager& manager = deployment.AddManager();
  (void)manager.AddDriver(*registry.DriverFor(record->id));
  MicroPnpThing& greenhouse = deployment.AddThing("greenhouse-node");
  MicroPnpClient& gardener = deployment.AddClient("gardener");

  SoilMoistureSensor probe(record->id, /*moisture_pct=*/35.0);
  (void)greenhouse.Plug(0, &probe);
  deployment.RunForMillis(1500);
  std::printf("\nplugged into the greenhouse node: driver %s\n",
              greenhouse.drivers().HasDriverFor(record->id) ? "installed over the air" : "MISSING");

  for (double moisture : {35.0, 12.0, 78.0}) {
    probe.set_moisture(moisture);
    gardener.Read(greenhouse.node().address(), record->id, [&](Result<WireValue> v) {
      if (v.ok()) {
        std::printf("  gardener reads soil moisture: %.1f %% (truth %.1f %%)\n", v->scalar / 10.0,
                    moisture);
      }
    });
    deployment.RunForMillis(500);
  }
  return 0;
}
