// Quickstart: the smallest complete μPnP deployment.
//
// One Thing, one Client, one Manager.  A TMP36 temperature sensor is plugged
// into the Thing at runtime: the hardware identifies it from its resistor
// set, the driver arrives over the air from the Manager, the Thing joins the
// peripheral's multicast group and advertises — and the Client reads the
// temperature without anyone ever configuring a driver by hand.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "src/core/deployment.h"

using namespace micropnp;

int main() {
  std::printf("=== uPnP quickstart ===\n\n");

  // A deployment owns the simulation clock, the environment, and the
  // 6LoWPAN network rooted at a border router.
  Deployment deployment;
  MicroPnpManager& manager = deployment.AddManager();  // driver repository
  MicroPnpThing& thing = deployment.AddThing("kitchen-node");
  MicroPnpClient& client = deployment.AddClient("laptop");

  std::printf("manager repository holds %zu drivers\n", manager.repository_size());
  std::printf("thing unicast address:   %s\n", thing.node().address().ToString().c_str());

  // Watch advertisements arrive at the client.
  client.set_advertisement_listener(
      [&](const Ip6Address& src, const std::vector<AdvertisedPeripheral>& peripherals) {
        std::printf("[%7.1f ms] client: advertisement from %s with %zu peripheral(s)\n",
                    deployment.NowMillis(), src.ToString().c_str(), peripherals.size());
        for (const AdvertisedPeripheral& p : peripherals) {
          const Tlv* name = p.info.Find(TlvType::kFriendlyName);
          std::printf("             * %s (%s)\n", FormatDeviceTypeId(p.type).c_str(),
                      name != nullptr ? name->AsString().c_str() : "?");
        }
      });

  // Plug the sensor in.  Everything from here is automatic.
  Tmp36& sensor = deployment.MakeTmp36();
  std::printf("\n[%7.1f ms] plugging TMP36 into channel 0...\n", deployment.NowMillis());
  if (!thing.Plug(0, &sensor).ok()) {
    std::printf("plug failed\n");
    return 1;
  }
  deployment.RunForMillis(1000);

  const PlugFlowMarks& marks = *thing.last_plug_flow();
  std::printf("[%7.1f ms] identification took %.1f ms; driver %s\n",
              deployment.NowMillis(), (marks.identified - marks.plugged).millis(),
              marks.driver_was_cached ? "was cached locally" : "installed over the air");

  // Discover Things carrying a TMP36, then read one.
  client.Discover(kTmp36TypeId, /*window_ms=*/300,
                  [&](Result<std::vector<MicroPnpClient::DiscoveredThing>> things) {
                    std::printf("[%7.1f ms] client: discovery found %zu thing(s)\n",
                                deployment.NowMillis(), things.ok() ? things->size() : 0);
                  });
  deployment.RunForMillis(500);

  client.Read(thing.node().address(), kTmp36TypeId, [&](Result<WireValue> value) {
    if (value.ok()) {
      std::printf("[%7.1f ms] client: temperature = %.1f degC (environment truth: %.1f degC)\n",
                  deployment.NowMillis(), value->scalar / 10.0,
                  deployment.environment().TemperatureC(deployment.scheduler().now()));
    } else {
      std::printf("read failed: %s\n", value.status().ToString().c_str());
    }
  });
  deployment.RunForMillis(500);

  // Hot-unplug: the driver's destroy handler runs and clients are notified.
  std::printf("\n[%7.1f ms] unplugging...\n", deployment.NowMillis());
  (void)thing.Unplug(0);
  deployment.RunForMillis(1000);

  std::printf("\ndone: %llu advertisement(s), %llu read(s) served\n",
              static_cast<unsigned long long>(thing.advertisements_sent()),
              static_cast<unsigned long long>(thing.reads_served()));
  return 0;
}
